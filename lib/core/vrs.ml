open Ogc_isa
open Ogc_ir
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span

(* Specialization telemetry: candidate disposition and pass wall time. *)
let m_runs = Metrics.counter "ogc_vrs_runs_total"
let m_pass_seconds = Metrics.histogram "ogc_vrs_pass_seconds"

let m_cand_specialized =
  Metrics.counter "ogc_vrs_candidates_total"
    ~labels:[ ("outcome", "specialized") ]

let m_cand_dependent =
  Metrics.counter "ogc_vrs_candidates_total"
    ~labels:[ ("outcome", "dependent_on_other") ]

let m_cand_no_benefit =
  Metrics.counter "ogc_vrs_candidates_total"
    ~labels:[ ("outcome", "no_benefit") ]

type config = {
  test_cost_nj : float;
  hot_fraction : float;
  max_candidates : int;
  min_freq : float;
  tnv_capacity : int;
  train_config : Interp.config;
  constprop : bool;  (* fold/eliminate inside clones (ablation knob) *)
}

(* The default guard cost approximates the full pipeline energy of one
   extra instruction; the harness sweeps it (paper Figure 8's VRS 30-110nJ
   configurations). *)
let default_config =
  {
    test_cost_nj = 1.5;
    hot_fraction = 0.001;
    max_candidates = 256;
    min_freq = 0.4;
    tnv_capacity = 8;
    train_config = Interp.default_config;
    constprop = true;
  }

type outcome =
  | Specialized of { lo : int64; hi : int64; freq : float; benefit : float }
  | Dependent_on_other
  | No_benefit

type report = {
  profiled : (int * outcome) list;
  guard_iids : (int, unit) Hashtbl.t;
  guard_branch_iids : (int, unit) Hashtbl.t;
  clone_blocks : (string * Label.t) list;
  clone_iids : (int, unit) Hashtbl.t;
  static_cloned : int;
  static_eliminated : int;
  assumptions : Vrp.assumption list;
  final_vrp : Vrp.result;
}

let specialized_count r =
  List.length
    (List.filter (function _, Specialized _ -> true | _ -> false) r.profiled)

let r27 = Reg.of_int 27
let r28 = Reg.of_int 28

let fits_imm v = Int64.compare v (-32768L) >= 0 && Int64.compare v 32767L <= 0

(* --- savings estimation (paper §3.1) -------------------------------------- *)

(* Execution count of the block holding instruction [iid]. *)
let make_inst_count (f : Prog.func) (counts : Interp.bb_counts) =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun (b : Prog.block) ->
      let c = Interp.count_of counts f.fname b.label in
      Array.iter (fun (ins : Prog.ins) -> Hashtbl.replace tbl ins.iid c) b.body;
      Hashtbl.replace tbl b.term_iid c)
    f.blocks;
  fun iid -> Option.value ~default:0 (Hashtbl.find_opt tbl iid)

(* Energy recovered when constant propagation folds one dependent
   instruction away entirely (Li replacement + dead-code elimination),
   beyond mere width narrowing.  Roughly the non-fixed share of one
   instruction's pipeline energy. *)
let fold_gain_nj = 1.2

(* [Savings(I, r, min, max)]: total energy saved over the (training) run if
   the output of [iid] narrowed to [new_width], following the def-use graph
   through dependent instructions as in the paper's recursive formula.
   When the specialized range is a single value ([single]), dependents
   whose only register inputs carry that value fold to constants
   (§3.4's value-specialization-plus-constant-propagation), which saves
   their whole execution rather than just datapath width.  The realized
   narrowing is later decided by re-running VRP; this estimate drives
   candidate filtering and the final cost/benefit test. *)
let estimate_savings ~table ~vrp ~ud ~ins_ops ~inst_count ~iid ~new_width
    ~single =
  let visited = Hashtbl.create 32 in
  let gain = ref 0.0 in
  let current_width use_iid =
    match Vrp.width_of vrp use_iid with Some w -> w | None -> Width.W64
  in
  let other_input_width use_iid =
    match Vrp.input_ranges_of vrp use_iid with
    | Some (a, b) -> Width.min (Interval.width a) (Interval.width b)
    | None -> Width.W64
  in
  (* A use folds to a constant when all the registers it reads hold the
     (constant) specialized value — i.e. every register use is [r]. *)
  let folds use_iid r =
    match Hashtbl.find_opt ins_ops use_iid with
    | Some (Instr.Alu _ | Instr.Cmp _ | Instr.Msk _ | Instr.Sext _ as op) ->
      List.for_all (fun u -> Reg.equal u r) (Instr.uses op)
    | Some _ | None -> false
  in
  let rec propagate def_iid w ~is_const =
    List.iter
      (fun di ->
        List.iter
          (fun (use_iid, r) ->
            if not (Hashtbl.mem visited use_iid) then begin
              Hashtbl.replace visited use_iid ();
              let cur = current_width use_iid in
              if is_const && folds use_iid r then begin
                gain :=
                  !gain +. (float_of_int (inst_count use_iid) *. fold_gain_nj);
                propagate use_iid w ~is_const:true
              end
              else begin
                let w' =
                  Width.min cur (Width.max w (other_input_width use_iid))
                in
                if Width.compare w' cur < 0 then begin
                  gain :=
                    !gain
                    +. float_of_int (inst_count use_iid)
                       *. Savings_table.saving table ~from_:cur ~to_:w';
                  propagate use_iid w' ~is_const:false
                end
              end
            end)
          (Usedef.uses_of_def ud di))
      (Usedef.defs_of_ins ud def_iid)
  in
  (* The candidate itself is re-encoded narrower, too. *)
  let cur = current_width iid in
  let w0 = Width.min cur new_width in
  if Width.compare w0 cur < 0 then
    gain :=
      !gain
      +. float_of_int (inst_count iid)
         *. Savings_table.saving table ~from_:cur ~to_:w0;
  propagate iid w0 ~is_const:single;
  !gain

(* --- candidate selection (paper §3.3) -------------------------------------- *)

type candidate = {
  c_iid : int;
  c_fname : string;
  c_dst : Reg.t;
  c_count : int;
  c_sav : float;  (* best-case savings estimate, guard cost excluded *)
}

let eligible_dst (ins : Prog.ins) =
  match ins.op with
  | Instr.Alu { dst; _ } | Instr.Load { dst; _ } ->
    if Reg.equal dst Reg.sp || Reg.equal dst Reg.zero then None else Some dst
  | Instr.Call _ -> Some Reg.ret
  | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _ | Instr.Sext _ | Instr.Li _
  | Instr.La _ | Instr.Store _ | Instr.Emit _ -> None

(* The cost-independent master list: every hot, wide definition with a
   positive best-case savings estimate.  The per-configuration guard-cost
   screening and ranking happen in {!select_for}, so one master list (and
   one set of value profiles) serves a whole guard-cost sweep. *)
let master_candidates config ~table ~vrp (p : Prog.t) counts ~total_dyn =
  let cands = ref [] in
  List.iter
    (fun (f : Prog.func) ->
      let cfg = Cfg.of_func f in
      let ud = Usedef.compute f cfg in
      let inst_count = make_inst_count f counts in
      let ins_ops = Hashtbl.create 256 in
      Prog.iter_ins f (fun _ ins -> Hashtbl.replace ins_ops ins.iid ins.op);
      Prog.iter_ins f (fun _ ins ->
          match eligible_dst ins with
          | None -> ()
          | Some dst ->
            let count = inst_count ins.iid in
            let hot =
              float_of_int count
              >= config.hot_fraction *. float_of_int total_dyn
              && count > 0
            in
            let wide =
              match Vrp.width_of vrp ins.iid with
              | Some (Width.W32 | Width.W64) -> true
              | Some (Width.W8 | Width.W16) | None -> (
                (* calls have no width; use the range instead *)
                match Vrp.range_of vrp ins.iid with
                | Some rng -> Width.compare (Interval.width rng) Width.W32 >= 0
                | None -> false)
            in
            if hot && wide then begin
              (* Preliminary filter: best-case narrowing (to a byte) at
                 the cheapest guard (a single comparison). *)
              let sav =
                estimate_savings ~table ~vrp ~ud ~ins_ops ~inst_count
                  ~iid:ins.iid ~new_width:Width.W8 ~single:true
              in
              if sav > 0.0 then
                cands :=
                  {
                    c_iid = ins.iid;
                    c_fname = f.fname;
                    c_dst = dst;
                    c_count = count;
                    c_sav = sav;
                  }
                  :: !cands
            end))
    p.funcs;
  !cands

(* Guard-cost screening at a concrete configuration: drop candidates whose
   best case cannot pay for the cheapest guard, rank by the margin, keep
   the profiling budget.  [List.sort] is stable and the master list keeps
   its construction order, so this yields byte-for-byte the candidate
   order a from-scratch screening at this cost would. *)
let select_for config master =
  let prelim c = c.c_sav -. (float_of_int c.c_count *. config.test_cost_nj) in
  let screened = List.filter (fun c -> prelim c > 0.0) master in
  let sorted =
    List.sort (fun a b -> Float.compare (prelim b) (prelim a)) screened
  in
  List.filteri (fun i _ -> i < config.max_candidates) sorted

(* --- the transformation (paper §3.4) ---------------------------------------- *)

(* Find the block index and body index of instruction [iid] in [f]. *)
let locate (f : Prog.func) iid =
  let found = ref None in
  Array.iteri
    (fun bi (b : Prog.block) ->
      Array.iteri
        (fun ii (ins : Prog.ins) -> if ins.iid = iid then found := Some (bi, ii))
        b.body)
    f.blocks;
  !found

(* Guard instruction sequence testing [x ∈ [lo,hi]]; returns the body
   instructions (fresh iids recorded as guards) and the branch condition
   source.  [None] as the register means "branch directly on x = 0". *)
let build_guard p report ~x ~lo ~hi =
  let fresh i =
    let iid = Prog.fresh_iid p in
    Hashtbl.replace report.guard_iids iid ();
    { Prog.iid; op = i }
  in
  if Int64.equal lo hi then
    if Int64.equal lo 0L then ([], `Zero_test)
    else if fits_imm lo then
      ( [ fresh (Instr.Cmp { op = Instr.Ceq; width = Width.W64; src1 = x;
                             src2 = Instr.Imm lo; dst = r27 }) ],
        `Test r27 )
    else
      ( [ fresh (Instr.Li { dst = r27; imm = lo });
          fresh (Instr.Cmp { op = Instr.Ceq; width = Width.W64; src1 = x;
                             src2 = Instr.Reg r27; dst = r27 }) ],
        `Test r27 )
  else begin
    let lo_ins =
      if fits_imm lo then
        [ fresh (Instr.Cmp { op = Instr.Clt; width = Width.W64; src1 = x;
                             src2 = Instr.Imm lo; dst = r27 }) ]
      else
        [ fresh (Instr.Li { dst = r27; imm = lo });
          fresh (Instr.Cmp { op = Instr.Clt; width = Width.W64; src1 = x;
                             src2 = Instr.Reg r27; dst = r27 }) ]
    in
    let hi_ins =
      if fits_imm hi then
        [ fresh (Instr.Cmp { op = Instr.Cle; width = Width.W64; src1 = x;
                             src2 = Instr.Imm hi; dst = r28 }) ]
      else
        [ fresh (Instr.Li { dst = r28; imm = hi });
          fresh (Instr.Cmp { op = Instr.Cle; width = Width.W64; src1 = x;
                             src2 = Instr.Reg r28; dst = r28 }) ]
    in
    (* inside = (x <= hi) AND NOT (x < lo) *)
    let combine =
      [ fresh (Instr.Alu { op = Instr.Bic; width = Width.W64; src1 = r28;
                           src2 = Instr.Reg r27; dst = r27 }) ]
    in
    (lo_ins @ hi_ins @ combine, `Test r27)
  end

(* Clone the dependent region and wire the guard.  Returns the assumption
   to install, or [None] when the transformation is not applicable. *)
let specialize_point (p : Prog.t) (f : Prog.func) report ~iid ~x ~lo ~hi =
  match locate f iid with
  | None -> None
  | Some (bi, ii) ->
    let b = f.blocks.(bi) in
    let nbody = Array.length b.body in
    (* 1. Split after the candidate. *)
    let tail_body = Array.sub b.body (ii + 1) (nbody - ii - 1) in
    let tail_label =
      Prog.append_block f ~body:tail_body ~term:b.term ~term_iid:b.term_iid
    in
    let guard_body, test = build_guard p report ~x ~lo ~hi in
    let head =
      {
        Prog.label = b.label;
        body = Array.append (Array.sub b.body 0 (ii + 1)) (Array.of_list guard_body);
        term = Prog.Jump tail_label (* placeholder until the clone exists *);
        term_iid = Prog.fresh_iid p;
      }
    in
    Hashtbl.replace report.guard_branch_iids head.term_iid ();
    f.blocks.(Label.to_int b.label) <- head;
    (* 2. Region: blocks dominated by the tail that contain instructions
       dependent on the candidate, or lead to one inside the dominated
       set. *)
    let cfg = Cfg.of_func f in
    let dom = Dom.compute cfg in
    let ud = Usedef.compute f cfg in
    let deps = Usedef.dependents ud ~iid in
    let dominated =
      Array.to_list f.blocks
      |> List.filter_map (fun (blk : Prog.block) ->
             if Dom.dominates dom tail_label blk.label then Some blk.label
             else None)
    in
    let contains_dep (blk : Prog.block) =
      Hashtbl.mem deps blk.term_iid
      || Array.exists (fun (ins : Prog.ins) -> Hashtbl.mem deps ins.iid) blk.body
    in
    let dep_labels =
      List.filter (fun l -> contains_dep f.blocks.(Label.to_int l)) dominated
    in
    (* Reverse reachability to a dependent block within the dominated set. *)
    let in_dominated l = List.exists (Label.equal l) dominated in
    let region = Hashtbl.create 16 in
    let rec mark l =
      if not (Hashtbl.mem region l) then begin
        Hashtbl.replace region l ();
        List.iter
          (fun pl -> if in_dominated pl then mark pl)
          (Cfg.preds cfg l)
      end
    in
    List.iter mark dep_labels;
    Hashtbl.replace region tail_label ();
    let region_list =
      List.filter (fun l -> Hashtbl.mem region l) dominated
    in
    (* 3. Clone the region. *)
    let mapping = Hashtbl.create 16 in
    List.iter
      (fun l ->
        let orig = f.blocks.(Label.to_int l) in
        let body =
          Array.map
            (fun (ins : Prog.ins) ->
              let niid = Prog.fresh_iid p in
              Hashtbl.replace report.clone_iids niid ();
              { Prog.iid = niid; op = ins.op })
            orig.body
        in
        let nl =
          Prog.append_block f ~body ~term:orig.term
            ~term_iid:(Prog.fresh_iid p)
        in
        Hashtbl.replace mapping (Label.to_int l) nl)
      region_list;
    (* Redirect intra-region edges inside the clones. *)
    let remap l =
      match Hashtbl.find_opt mapping (Label.to_int l) with
      | Some nl -> nl
      | None -> l
    in
    Hashtbl.iter
      (fun _ nl ->
        let blk = f.blocks.(Label.to_int nl) in
        blk.term <-
          (match blk.term with
          | Prog.Jump l -> Prog.Jump (remap l)
          | Prog.Branch br ->
            Prog.Branch
              { br with if_true = remap br.if_true; if_false = remap br.if_false }
          | Prog.Return -> Prog.Return))
      mapping;
    (* 4. Final guard branch. *)
    let clone_entry = Hashtbl.find mapping (Label.to_int tail_label) in
    head.term <-
      (match test with
      | `Zero_test ->
        Prog.Branch
          { cond = Instr.Eq; src = x; if_true = clone_entry; if_false = tail_label }
      | `Test r ->
        Prog.Branch
          { cond = Instr.Ne; src = r; if_true = clone_entry; if_false = tail_label });
    let cloned_static =
      List.fold_left
        (fun acc l -> acc + Array.length f.blocks.(Label.to_int l).body)
        0 region_list
    in
    Some
      ( { Vrp.af = f.fname; alabel = clone_entry; areg = x;
          arange = Interval.v lo hi },
        region_list,
        List.map (fun l -> Hashtbl.find mapping (Label.to_int l)) region_list,
        deps,
        cloned_static )

(* --- driver ------------------------------------------------------------------ *)

let guard_instr_count ~lo ~hi =
  if Int64.equal lo hi then (if Int64.equal lo 0L then 1 else 2) else 4

(* The expensive, guard-cost-independent front half of the pipeline: the
   initial VRP pass, the basic-block-profiling training run, the master
   candidate list, and the value-profiling training run.  One [analysis]
   serves every guard-cost configuration of the same program state
   ({!specialize} below), which is what makes the harness's 5-point cost
   sweep compute VRP and the two interpreter runs once per workload. *)
type analysis = {
  a_vrp : Vrp.result;
  a_counts : Interp.bb_counts;
  a_master : candidate list;
  a_profiles : (int, Tnv.t) Hashtbl.t;
}

let profiled_points a = List.length a.a_master

(* The profiling points, in master-list (decision) order: what a client
   building a wire profile should sample. *)
let candidate_iids a = List.map (fun c -> c.c_iid) a.a_master

(* One guard instruction costs roughly the pipeline energy of an extra
   instruction; the paper's nJ labels (the Figure 8 sweep) scale it. *)
let cost_of_label l = float_of_int l *. 0.03

let analyze_inner config ?vrp ?bb ?values (p : Prog.t) =
  let table = Savings_table.default in
  (* Step 0: VRP pass; VRS builds on re-encoded code.  A caller that
     already ran it (the pass manager) hands the result in. *)
  let vrp1 = match vrp with Some r -> r | None -> Vrp.run p in
  (* Step 1: training run for basic-block profiles (shareable too). *)
  let counts, total_dyn =
    match bb with
    | Some (counts, total) -> (counts, total)
    | None ->
      let counts : Interp.bb_counts = Hashtbl.create 64 in
      let train1 =
        Span.with_ ~name:"vrs:train" (fun () ->
            Interp.run ~config:config.train_config ~bb_counts:counts p)
      in
      (counts, train1.Interp.steps)
  in
  let master = master_candidates config ~table ~vrp:vrp1 p counts ~total_dyn in
  (* Step 2: value-profile every master candidate on the training input.
     Each TNV table only sees its own instruction's values, so profiling
     the (cost-independent) superset leaves per-candidate profiles
     identical to profiling any screened subset. *)
  let profiles = Hashtbl.create 64 in
  (match values with
  | Some tbl ->
    (* Streamed wire profiles replace the profiling run: replay each
       candidate's (value, count) observations into its table.
       Candidates the client never observed get empty tables and fall
       out of the cost/benefit test as [No_benefit]. *)
    List.iter
      (fun c ->
        let entries =
          Option.value ~default:[] (Hashtbl.find_opt tbl c.c_iid)
        in
        Hashtbl.replace profiles c.c_iid
          (Tnv.of_entries ~capacity:config.tnv_capacity entries))
      master
  | None ->
    let samplers = Hashtbl.create 64 in
    List.iter
      (fun c ->
        let t = Tnv.create ~capacity:config.tnv_capacity () in
        Hashtbl.replace profiles c.c_iid t;
        Hashtbl.replace samplers c.c_iid (Tnv.observe t))
      master;
    Span.with_ ~name:"vrs:profile" (fun () ->
        ignore (Interp.run ~config:config.train_config ~profile:samplers p)));
  { a_vrp = vrp1; a_counts = counts; a_master = master; a_profiles = profiles }

(* Steps 4-5, shared by full VRS and the zero-specialization variant:
   propagate the guard-established ranges through the clones, realize
   the constant folding, and re-assign widths on the cleaned program. *)
let finish_clones config ~clone_iids ~assumptions (p : Prog.t) =
  Validate.program p;
  let vrp_cfg = { Vrp.default_config with assumptions } in
  let vrp2 = Vrp.run ~config:vrp_cfg p in
  let eliminated_in_clones =
    if config.constprop then begin
      let cp = Constprop.run vrp2 p in
      List.length
        (List.filter (fun iid -> Hashtbl.mem clone_iids iid) cp.removed_iids)
    end
    else 0
  in
  Validate.program p;
  let vrp3 = Vrp.run ~config:vrp_cfg p in
  Validate.program p;
  (vrp3, eliminated_in_clones)

let empty_report vrp =
  {
    profiled = [];
    guard_iids = Hashtbl.create 64;
    guard_branch_iids = Hashtbl.create 64;
    clone_blocks = [];
    clone_iids = Hashtbl.create 256;
    static_cloned = 0;
    static_eliminated = 0;
    assumptions = [];
    final_vrp = vrp;
  }

let specialize_inner config (a : analysis) (p : Prog.t) =
  let table = Savings_table.default in
  let vrp1 = a.a_vrp in
  let counts = a.a_counts in
  let profiles = a.a_profiles in
  let cands = select_for config a.a_master in
  (* Step 3: cost/benefit and transformation, best candidates first. *)
  let report = empty_report vrp1 in
  let consumed = Hashtbl.create 64 in
  let outcomes = ref [] in
  let assumptions = ref [] in
  let clone_blocks = ref [] in
  let static_cloned = ref 0 in
  Span.with_ ~name:"vrs:specialize" (fun () ->
  List.iter
    (fun c ->
      if Hashtbl.mem consumed c.c_iid then
        outcomes := (c.c_iid, Dependent_on_other) :: !outcomes
      else begin
        let f = Prog.find_func p c.c_fname in
        let cfg = Cfg.of_func f in
        let ud = Usedef.compute f cfg in
        let inst_count = make_inst_count f counts in
        let ins_ops = Hashtbl.create 256 in
        Prog.iter_ins f (fun _ ins -> Hashtbl.replace ins_ops ins.iid ins.op);
        let tnv = Hashtbl.find profiles c.c_iid in
        let best =
          List.fold_left
            (fun best (lo, hi, freq) ->
              if freq < config.min_freq then best
              else begin
                let w = Width.needed_range lo hi in
                let sav =
                  estimate_savings ~table ~vrp:vrp1 ~ud ~ins_ops ~inst_count
                    ~iid:c.c_iid ~new_width:w ~single:(Int64.equal lo hi)
                in
                let cost =
                  float_of_int c.c_count
                  *. config.test_cost_nj
                  *. float_of_int (guard_instr_count ~lo ~hi)
                in
                let benefit = (freq *. sav) -. cost in
                match best with
                | Some (_, _, _, b) when b >= benefit -> best
                | _ when benefit > 0.0 -> Some (lo, hi, freq, benefit)
                | _ -> best
              end)
            None (Tnv.candidate_ranges tnv)
        in
        match best with
        | None -> outcomes := (c.c_iid, No_benefit) :: !outcomes
        | Some (lo, hi, freq, benefit) -> (
          match
            specialize_point p f report ~iid:c.c_iid ~x:c.c_dst ~lo ~hi
          with
          | None -> outcomes := (c.c_iid, No_benefit) :: !outcomes
          | Some (assumption, region_orig, region_clones, deps, cloned) ->
            assumptions := assumption :: !assumptions;
            static_cloned := !static_cloned + cloned;
            clone_blocks :=
              List.map (fun l -> (c.c_fname, l)) region_clones @ !clone_blocks;
            (* Later candidates inside this region, or data-dependent on
               this point, are subsumed. *)
            Hashtbl.iter (fun dep_iid () -> Hashtbl.replace consumed dep_iid ()) deps;
            List.iter
              (fun l ->
                Array.iter
                  (fun (ins : Prog.ins) -> Hashtbl.replace consumed ins.iid ())
                  f.blocks.(Label.to_int l).body)
              region_orig;
            outcomes :=
              (c.c_iid, Specialized { lo; hi; freq; benefit }) :: !outcomes)
      end)
    cands);
  (* Steps 4-5: propagate the guard-established ranges, fold constants
     and assign final widths. *)
  let vrp3, eliminated_in_clones =
    finish_clones config ~clone_iids:report.clone_iids
      ~assumptions:!assumptions p
  in
  let r =
    {
      report with
      profiled = List.rev !outcomes;
      clone_blocks = !clone_blocks;
      static_cloned = !static_cloned;
      static_eliminated = eliminated_in_clones;
      assumptions = !assumptions;
      final_vrp = vrp3;
    }
  in
  if Metrics.enabled () then
    List.iter
      (fun (_, o) ->
        Metrics.incr
          (match o with
          | Specialized _ -> m_cand_specialized
          | Dependent_on_other -> m_cand_dependent
          | No_benefit -> m_cand_no_benefit))
      r.profiled;
  r

(* --- zero specialization (AZP-style) --------------------------------------- *)

(* The min=max=0 slice of the pipeline: a candidate qualifies only when
   its profile says the produced value is zero often enough — i.e. the
   tightest profiled range is exactly [0,0] at frequency >= min_freq.
   The guard is then the single-instruction Alpha zero test, and every
   clone is entered under the assumption x = 0, so constant propagation
   folds the dependent region down aggressively.  Deliberately cheap:
   no range sweep, one fixed width target, one guard shape. *)
let specialize_zero_inner config (a : analysis) (p : Prog.t) =
  let table = Savings_table.default in
  let vrp1 = a.a_vrp in
  let counts = a.a_counts in
  let profiles = a.a_profiles in
  let cands = select_for config a.a_master in
  let report = empty_report vrp1 in
  let consumed = Hashtbl.create 64 in
  let outcomes = ref [] in
  let assumptions = ref [] in
  let clone_blocks = ref [] in
  let static_cloned = ref 0 in
  Span.with_ ~name:"zspec:specialize" (fun () ->
      List.iter
        (fun c ->
          if Hashtbl.mem consumed c.c_iid then
            outcomes := (c.c_iid, Dependent_on_other) :: !outcomes
          else
            let tnv = Hashtbl.find profiles c.c_iid in
            match Tnv.candidate_ranges tnv with
            | (0L, 0L, freq) :: _ when freq >= config.min_freq -> (
              let f = Prog.find_func p c.c_fname in
              let cfg = Cfg.of_func f in
              let ud = Usedef.compute f cfg in
              let inst_count = make_inst_count f counts in
              let ins_ops = Hashtbl.create 256 in
              Prog.iter_ins f (fun _ ins ->
                  Hashtbl.replace ins_ops ins.iid ins.op);
              let sav =
                estimate_savings ~table ~vrp:vrp1 ~ud ~ins_ops ~inst_count
                  ~iid:c.c_iid ~new_width:(Width.needed_range 0L 0L)
                  ~single:true
              in
              (* The zero test is one branch: guard_instr_count 0 0 = 1. *)
              let cost = float_of_int c.c_count *. config.test_cost_nj in
              let benefit = (freq *. sav) -. cost in
              if benefit <= 0.0 then
                outcomes := (c.c_iid, No_benefit) :: !outcomes
              else
                match
                  specialize_point p f report ~iid:c.c_iid ~x:c.c_dst ~lo:0L
                    ~hi:0L
                with
                | None -> outcomes := (c.c_iid, No_benefit) :: !outcomes
                | Some (assumption, region_orig, region_clones, deps, cloned)
                  ->
                  assumptions := assumption :: !assumptions;
                  static_cloned := !static_cloned + cloned;
                  clone_blocks :=
                    List.map (fun l -> (c.c_fname, l)) region_clones
                    @ !clone_blocks;
                  Hashtbl.iter
                    (fun dep_iid () -> Hashtbl.replace consumed dep_iid ())
                    deps;
                  List.iter
                    (fun l ->
                      Array.iter
                        (fun (ins : Prog.ins) ->
                          Hashtbl.replace consumed ins.iid ())
                        f.blocks.(Label.to_int l).body)
                    region_orig;
                  outcomes :=
                    (c.c_iid, Specialized { lo = 0L; hi = 0L; freq; benefit })
                    :: !outcomes)
            | _ -> outcomes := (c.c_iid, No_benefit) :: !outcomes)
        cands);
  let vrp3, eliminated_in_clones =
    finish_clones config ~clone_iids:report.clone_iids
      ~assumptions:!assumptions p
  in
  {
    report with
    profiled = List.rev !outcomes;
    clone_blocks = !clone_blocks;
    static_cloned = !static_cloned;
    static_eliminated = eliminated_in_clones;
    assumptions = !assumptions;
    final_vrp = vrp3;
  }

let analyze ?(config = default_config) ?vrp ?bb ?values (p : Prog.t) =
  Span.with_ ~name:"vrs:analyze" (fun () ->
      analyze_inner config ?vrp ?bb ?values p)

let specialize ?(config = default_config) a (p : Prog.t) =
  specialize_inner config a p

let specialize_zero ?(config = default_config) a (p : Prog.t) =
  specialize_zero_inner config a p

let run ?(config = default_config) (p : Prog.t) =
  Span.with_ ~name:"vrs" (fun () ->
      let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
      let a = analyze_inner config p in
      let r = specialize_inner config a p in
      if t0 > 0.0 then begin
        Metrics.incr m_runs;
        Metrics.observe m_pass_seconds (Unix.gettimeofday () -. t0)
      end;
      r)
