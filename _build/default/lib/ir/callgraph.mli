(** Call graph over a program's direct calls. *)

type t

val compute : Prog.t -> t

(** Functions called by [f] (deduplicated, defined functions only). *)
val callees : t -> string -> string list

(** Functions containing a call to [f]. *)
val callers : t -> string -> string list

(** Call sites of [callee]: [(caller, iid)] pairs. *)
val call_sites : t -> string -> (string * int) list

(** Bottom-up ordering (callees before callers); members of call cycles
    appear in an arbitrary relative order. *)
val bottom_up : t -> string list

(** [is_recursive t f] is true when [f] can reach itself. *)
val is_recursive : t -> string -> bool
