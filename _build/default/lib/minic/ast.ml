(* Abstract syntax of MiniC, the small C-like language the workloads are
   written in.

   MiniC is integer-only, in the spirit of the SpecInt evaluation: four
   integer types, one-dimensional arrays, functions, and an [emit]
   intrinsic producing the program's observable output.  [char] is an
   unsigned byte (Alpha byte loads are unsigned, paper §4.3); [short],
   [int] and [long] are signed 16/32/64-bit.  Arithmetic is performed at
   the promoted width of its operands with a minimum of [int] (the Alpha
   addl/addq split), and wraps around in two's complement. *)

type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

type ty = Tchar | Tshort | Tint | Tlong

let ty_name = function
  | Tchar -> "char"
  | Tshort -> "short"
  | Tint -> "int"
  | Tlong -> "long"

let size_of_ty = function Tchar -> 1 | Tshort -> 2 | Tint -> 4 | Tlong -> 8

type unop = Neg | Lognot (* ! *) | Bitnot (* ~ *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Neq | Lt | Le | Gt | Ge
  | Andand | Oror

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Andand -> "&&" | Oror -> "||"

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Num of int64
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Call of string * expr list
  | Cast of ty * expr

type lvalue = Lvar of string | Lindex of string * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of ty * string * expr option
  | Decl_array of ty * string * int
  | Assign of lvalue * expr
  | Op_assign of binop * lvalue * expr  (* x op= e *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * stmt option * stmt list
  | Break
  | Continue
  | Return of expr option
  | Expr_stmt of expr
  | Emit of expr

type param = { pty : ty; pname : string; parray : bool }

type fundef = {
  ret : ty option;  (* None for void *)
  fname : string;
  params : param list;
  body : stmt list;
  fpos : pos;
}

type init = Init_list of int64 list | Init_string of string

type gdecl =
  | Gscalar of ty * string * int64
  | Garray of ty * string * int * init option

type program = { globals : gdecl list; funcs : fundef list }
