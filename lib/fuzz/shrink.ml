module Prog = Ogc_ir.Prog

(* The current best candidate, replaced whenever [keep] accepts a
   smaller program. *)
type state = { keep : Prog.t -> bool; mutable best : Prog.t; mutable changed : bool }

let try_candidate st q =
  let ok = try st.keep q with _ -> false in
  if ok then begin
    st.best <- q;
    st.changed <- true
  end;
  ok

(* --- reductions ----------------------------------------------------------- *)

let drop_functions st =
  let names =
    List.filter_map
      (fun (f : Prog.func) ->
        if String.equal f.Prog.fname "main" then None else Some f.Prog.fname)
      st.best.Prog.funcs
  in
  List.iter
    (fun name ->
      let q = Prog.copy st.best in
      if List.length q.Prog.funcs > 1 then begin
        q.Prog.funcs <-
          List.filter
            (fun (f : Prog.func) -> not (String.equal f.Prog.fname name))
            q.Prog.funcs;
        ignore (try_candidate st q)
      end)
    names

let drop_globals st =
  let names = List.map (fun (g : Prog.global) -> g.Prog.gname) st.best.Prog.globals in
  List.iter
    (fun name ->
      let p = st.best in
      let globals =
        List.filter
          (fun (g : Prog.global) -> not (String.equal g.Prog.gname name))
          p.Prog.globals
      in
      if List.length globals < List.length p.Prog.globals then
        let q = Prog.copy { p with Prog.globals } in
        ignore (try_candidate st q))
    names

(* ddmin over one block's body: remove windows of [size] instructions,
   halving [size] until single instructions have been tried. *)
let shrink_block_bodies st =
  let nfuncs () = List.length st.best.Prog.funcs in
  let func fi = List.nth st.best.Prog.funcs fi in
  let fi = ref 0 in
  while !fi < nfuncs () do
    let bi = ref 0 in
    while !bi < Array.length (func !fi).Prog.blocks do
      let len () = Array.length (func !fi).Prog.blocks.(!bi).Prog.body in
      let size = ref (max 1 (len ())) in
      while !size >= 1 do
        let start = ref 0 in
        while !start + !size <= len () do
          let q = Prog.copy st.best in
          let b = (List.nth q.Prog.funcs !fi).Prog.blocks.(!bi) in
          b.Prog.body <-
            Array.append
              (Array.sub b.Prog.body 0 !start)
              (Array.sub b.Prog.body (!start + !size)
                 (Array.length b.Prog.body - !start - !size));
          (* On success the window now holds fresh content; retry it. *)
          if not (try_candidate st q) then start := !start + !size
        done;
        size := !size / 2
      done;
      incr bi
    done;
    incr fi
  done

let simplify_terminators st =
  let nfuncs () = List.length st.best.Prog.funcs in
  let fi = ref 0 in
  while !fi < nfuncs () do
    let bi = ref 0 in
    while !bi < Array.length (List.nth st.best.Prog.funcs !fi).Prog.blocks do
      let candidates =
        match (List.nth st.best.Prog.funcs !fi).Prog.blocks.(!bi).Prog.term with
        | Prog.Branch { if_true; if_false; _ } ->
          [ Prog.Jump if_true; Prog.Jump if_false; Prog.Return ]
        | Prog.Jump _ -> [ Prog.Return ]
        | Prog.Return -> []
      in
      List.iter
        (fun term ->
          let q = Prog.copy st.best in
          let b = (List.nth q.Prog.funcs !fi).Prog.blocks.(!bi) in
          if b.Prog.term <> term then begin
            b.Prog.term <- term;
            ignore (try_candidate st q)
          end)
        candidates;
      incr bi
    done;
    incr fi
  done

(* Labels are positional, so the cleanup pass only empties unreachable
   blocks (threading jumps around them); it never removes them. *)
let cleanup st =
  let q = Prog.copy st.best in
  match Ogc_core.Cleanup.run q with
  | _ -> if Prog.num_static_ins q < Prog.num_static_ins st.best then
      ignore (try_candidate st q)
  | exception _ -> ()

(* Physically delete unreachable blocks, renumbering every label — the
   one structural edit optimization passes never do (they must keep
   labels stable for profiles and analysis facts; a reducer has no such
   obligation). *)
let drop_unreachable_blocks st =
  let q = Prog.copy st.best in
  let shrunk = ref false in
  List.iter
    (fun (f : Prog.func) ->
      let cfg = Ogc_ir.Cfg.of_func f in
      let n = Array.length f.Prog.blocks in
      let keep =
        Array.init n (fun i ->
            Ogc_ir.Cfg.is_reachable cfg (Ogc_ir.Label.of_int i))
      in
      if Array.exists not keep then begin
        shrunk := true;
        let remap = Array.make n (-1) in
        let next = ref 0 in
        Array.iteri
          (fun i k ->
            if k then begin
              remap.(i) <- !next;
              incr next
            end)
          keep;
        let relabel l = Ogc_ir.Label.of_int remap.(Ogc_ir.Label.to_int l) in
        let reterm = function
          | Prog.Jump l -> Prog.Jump (relabel l)
          | Prog.Branch b ->
            Prog.Branch
              { b with if_true = relabel b.if_true; if_false = relabel b.if_false }
          | Prog.Return -> Prog.Return
        in
        f.Prog.blocks <-
          Array.of_list
            (List.filter_map
               (fun (b : Prog.block) ->
                 if keep.(Ogc_ir.Label.to_int b.Prog.label) then
                   Some
                     {
                       b with
                       Prog.label = relabel b.Prog.label;
                       term = reterm b.Prog.term;
                     }
                 else None)
               (Array.to_list f.Prog.blocks))
      end)
    q.Prog.funcs;
  if !shrunk then ignore (try_candidate st q)

(* Merge a block into its unique Jump successor when that successor has
   no other predecessor: saves the jump terminator, and the emptied
   successor becomes unreachable for [drop_unreachable_blocks]. *)
let merge_straightline st =
  let nfuncs () = List.length st.best.Prog.funcs in
  let fi = ref 0 in
  while !fi < nfuncs () do
    let bi = ref 0 in
    while !bi < Array.length (List.nth st.best.Prog.funcs !fi).Prog.blocks do
      let f = List.nth st.best.Prog.funcs !fi in
      (match f.Prog.blocks.(!bi).Prog.term with
      | Prog.Jump l when Ogc_ir.Label.to_int l <> !bi ->
        let li = Ogc_ir.Label.to_int l in
        let preds_of_l =
          Array.fold_left
            (fun acc (b : Prog.block) ->
              match b.Prog.term with
              | Prog.Jump m when Ogc_ir.Label.equal m l -> acc + 1
              | Prog.Branch { if_true; if_false; _ } ->
                acc
                + (if Ogc_ir.Label.equal if_true l then 1 else 0)
                + if Ogc_ir.Label.equal if_false l then 1 else 0
              | Prog.Jump _ | Prog.Return -> acc)
            0 f.Prog.blocks
        in
        if preds_of_l = 1 then begin
          let q = Prog.copy st.best in
          let qf = List.nth q.Prog.funcs !fi in
          let b = qf.Prog.blocks.(!bi) in
          let succ = qf.Prog.blocks.(li) in
          b.Prog.body <- Array.append b.Prog.body succ.Prog.body;
          b.Prog.term <- succ.Prog.term;
          succ.Prog.body <- [||];
          ignore (try_candidate st q)
        end
      | Prog.Jump _ | Prog.Branch _ | Prog.Return -> ());
      incr bi
    done;
    incr fi
  done

let minimize ?(max_rounds = 30) ~keep p =
  if not (keep p) then
    invalid_arg "Shrink.minimize: predicate does not hold on the input";
  let st = { keep; best = Prog.copy p; changed = true } in
  let rounds = ref 0 in
  while st.changed && !rounds < max_rounds do
    st.changed <- false;
    incr rounds;
    drop_functions st;
    cleanup st;
    drop_unreachable_blocks st;
    shrink_block_bodies st;
    simplify_terminators st;
    merge_straightline st;
    drop_globals st;
    cleanup st;
    drop_unreachable_blocks st
  done;
  st.best
