examples/quickstart.ml: Format Hashtbl Int64 List Ogc_core Ogc_ir Ogc_isa Ogc_minic Option
