open Ogc_isa
module Pipeline = Ogc_cpu.Pipeline
module Policy = Ogc_gating.Policy
module Workload = Ogc_workloads.Workload
module Vrp = Ogc_core.Vrp
module Vrs = Ogc_core.Vrs
module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp
module Account = Ogc_energy.Account
module Ep = Ogc_energy.Energy_params
module Pool = Ogc_exec.Pool
module Regalloc = Ogc_regalloc.Regalloc
module Json = Ogc_json.Json
module Span = Ogc_obs.Span
module Pass = Ogc_pass.Pass

let vrs_costs = [ 110; 90; 70; 50; 30 ]
let test_cost_of_label = Vrs.cost_of_label

type vrs_summary = {
  points_specialized : int;
  points_dependent : int;
  points_no_benefit : int;
  static_cloned : int;
  static_eliminated : int;
}

let summarize_report (rep : Vrs.report) =
  let s, d, n =
    List.fold_left
      (fun (s, d, n) (_, o) ->
        match o with
        | Vrs.Specialized _ -> (s + 1, d, n)
        | Vrs.Dependent_on_other -> (s, d + 1, n)
        | Vrs.No_benefit -> (s, d, n + 1))
      (0, 0, 0) rep.Vrs.profiled
  in
  {
    points_specialized = s;
    points_dependent = d;
    points_no_benefit = n;
    static_cloned = rep.Vrs.static_cloned;
    static_eliminated = rep.Vrs.static_eliminated;
  }

type wres = {
  wname : string;
  static_instructions : int;
  spill_slots_bytes : int;
      (** width-aware spill-slot bytes the allocator laid out *)
  spill_slots_naive_bytes : int;
      (** the same slots at a uniform 8 bytes each *)
  base_none : Pipeline.stats;
  base_hwsig : Pipeline.stats;
  base_hwsize : Pipeline.stats;
  vrp_sw : Pipeline.stats;
  vrpconv_sw : Pipeline.stats;
  vrp_sig : Pipeline.stats;
  vrp_size : Pipeline.stats;
  vrs : (int * Pipeline.stats) list;
  vrs50_sig : Pipeline.stats;
  vrs50_size : Pipeline.stats;
  vrs_reports : (int * vrs_summary) list;
  vrs50_spec_frac : float;
  vrs50_guard_frac : float;
}

(* One workload's analyze-throughput microbench: wall time of the dense
   [Vrp.analyze] (best of 5), the retained naive reference for the
   speedup column (one repetition — it is the slow one), and the dense
   engine's deterministic effort counters, which CI gates exactly. *)
type analyze_bench = {
  ab_seconds : float;
  ab_naive_seconds : float;
  ab_visits : int;
  ab_rounds : int;
  ab_defs : int;
}

(* One serve-fleet loadgen run (router + sharded servers, one shard
   killed mid-run): completion counts and client-observed latency
   percentiles.  [fb_failed] is gated exactly — the fleet criterion is
   zero failed submissions even through the kill. *)
type fleet_bench = {
  fb_shards : int;
  fb_requests : int;
  fb_failed : int;
  fb_hedged : int;
  fb_p50_ms : float;
  fb_p95_ms : float;
  fb_p99_ms : float;
}

type t = {
  workloads : wres list;
  analyze : (string * analyze_bench) list;
  fleet : fleet_bench option;
  quick : bool;
}

exception Semantics_changed of string

let check_checksum wname expected (s : Pipeline.stats) what =
  if not (Int64.equal expected s.checksum) then
    raise
      (Semantics_changed
         (Printf.sprintf "%s: %s changed the output (%Ld vs %Ld)" wname what
            expected s.checksum))

(* Run-time accounting of the specialized code (Figure 6): execute the
   final binary, count instructions committed inside clone blocks and
   guard comparisons. *)
let runtime_specialization (p : Prog.t) (rep : Vrs.report) eval_input =
  Workload.set_scale p eval_input;
  let counts : Interp.bb_counts = Hashtbl.create 64 in
  let out = Interp.run ~bb_counts:counts p in
  let clone_instrs = ref 0 in
  List.iter
    (fun (fname, label) ->
      match Prog.find_func_opt p fname with
      | None -> ()
      | Some f ->
        let b = Prog.block f label in
        let c = Interp.count_of counts fname label in
        clone_instrs := !clone_instrs + (c * (Array.length b.body + 1)))
    rep.clone_blocks;
  let guard_instrs = ref 0 in
  let tbl = Prog.ins_table p in
  Hashtbl.iter
    (fun iid () ->
      match Hashtbl.find_opt tbl iid with
      | Some (f, b, _) ->
        guard_instrs :=
          !guard_instrs + Interp.count_of counts f.Prog.fname b.Prog.label
      | None -> ())
    rep.guard_iids;
  let total = float_of_int (max 1 out.steps) in
  (float_of_int !clone_instrs /. total, float_of_int !guard_instrs /. total)

(* --- parallel collection --------------------------------------------------- *)

(* Per-workload output of the compile-and-baseline phase.  [pristine] is
   the one compilation of the workload, shared read-only by the
   binary-version tasks of the later phases (each starts from its own
   {!Prog.copy}).  [store] is the workload's pass-artifact store: the
   analyses phase warms it with the guard-cost-independent front of the
   VRS pipeline, and every version cell then runs its chain against it. *)
type base_info = {
  bw : Workload.t;
  pristine : Prog.t;
  store : Pass.Store.t;
  ref_checksum : int64;
  b_none : Pipeline.stats;
  b_hwsig : Pipeline.stats;
  b_hwsize : Pipeline.stats;
  b_static : int;
  b_spill_slots : int;  (** width-aware spill-slot bytes, whole program *)
  b_spill_naive : int;  (** the same slots at a uniform 8 bytes *)
  b_spill_fn : int -> int option;
      (** iid → spill slot bytes, for {!Pipeline.simulate}'s
          [spill_bytes_of]; valid on every binary version because passes
          preserve instruction ids *)
}

type version = V_vrp | V_vrp_conv | V_vrs of int

type vrs_cell = {
  label : int;
  stats : Pipeline.stats;
  summary : vrs_summary;
  anchor : (Pipeline.stats * Pipeline.stats * float * float) option;
      (** +significance, +size, spec fraction, guard fraction — only for
          the anchor (VRS-50) task *)
}

type version_result =
  | R_vrp of Pipeline.stats * Pipeline.stats * Pipeline.stats
      (** software, +significance, +size *)
  | R_vrp_conv of Pipeline.stats
  | R_vrs of vrs_cell

let collect_timed ?(quick = false) ?only ?(progress = fun _ -> ()) ?jobs () =
  let jobs = Pool.resolve_jobs jobs in
  let eval_input = if quick then Workload.Train else Workload.Ref in
  let costs = if quick then [ 50 ] else vrs_costs in
  let anchor_label = if List.mem 50 costs then 50 else List.hd costs in
  let sim = Pipeline.simulate in
  (* The caller's progress callback is not required to be thread-safe;
     serialize it. *)
  let progress_mutex = Mutex.create () in
  let progress s =
    Mutex.lock progress_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock progress_mutex) (fun () ->
        progress s)
  in
  (* Every binary version gets the generic binary-optimizer cleanups,
     baseline included — the paper's baseline is Alto-processed too.
     Compilation from MiniC happens once per workload; versions start
     from a private copy of that pristine program and express their
     transformation as a pass chain against the workload's artifact
     store, so chains sharing a prefix (notably the VRS cost sweep's
     guard-cost-independent analysis front) compute it once. *)
  let scaled_copy pristine inp =
    let p = Prog.copy pristine in
    Workload.set_scale p inp;
    p
  in
  let run_pass_chain bi inp chain =
    let st, _ = Pass.run ~store:bi.store chain (scaled_copy bi.pristine inp) in
    Ogc_ir.Validate.program st.Pass.prog;
    st
  in
  (* The guard-cost-independent front half of the VRS pipeline; warmed
     once per workload on the train input, shared by the cost sweep. *)
  let profile_chain = "cleanup,vrp,encode-widths,bb-profile,value-profile" in
  let selected =
    match only with
    | None -> Workload.all
    | Some names ->
      List.filter (fun (w : Workload.t) -> List.mem w.name names) Workload.all
  in
  (* Phase 1: one task per workload — compile, reference run, baseline
     binary under the three hardware-side policies. *)
  let ph1_t0 = Unix.gettimeofday () in
  let base_infos =
    Span.with_ ~name:"collect:baselines" @@ fun () ->
    Pool.map ~jobs
      (fun (w : Workload.t) ->
        progress w.name;
        let pristine, alloc = Workload.compile_with_alloc w eval_input in
        let spill_fn iid = Hashtbl.find_opt alloc.Regalloc.spill_ops iid in
        let store = Pass.Store.create () in
        let base = scaled_copy pristine eval_input in
        let st, _ = Pass.run ~store "cleanup" base in
        let base = st.Pass.prog in
        let reference = Interp.run base in
        {
          bw = w;
          pristine;
          store;
          ref_checksum = reference.Interp.checksum;
          b_none = sim ~spill_bytes_of:spill_fn ~policy:Policy.No_gating base;
          b_hwsig =
            sim ~spill_bytes_of:spill_fn ~policy:Policy.Hw_significance base;
          b_hwsize = sim ~spill_bytes_of:spill_fn ~policy:Policy.Hw_size base;
          b_static = Prog.num_static_ins base;
          b_spill_slots = Regalloc.spill_slots_bytes alloc;
          b_spill_naive = Regalloc.spill_slots_naive_bytes alloc;
          b_spill_fn = spill_fn;
        })
      selected
  in
  let ph1_s = Unix.gettimeofday () -. ph1_t0 in
  (* Phase 2: warm each workload's store with the shared analysis front
     (VRP fixpoint, training basic-block profile, TNV value profiles) on
     the train input, so the phase-3 cost-sweep cells — which run
     concurrently — all hit it instead of recomputing it per cost. *)
  let ph2_t0 = Unix.gettimeofday () in
  (Span.with_ ~name:"collect:analyses" @@ fun () ->
   ignore
     (Pool.map ~jobs
        (fun bi ->
          progress (bi.bw.Workload.name ^ "/analyze");
          ignore (run_pass_chain bi Workload.Train profile_chain))
        base_infos));
  let ph_an_s = Unix.gettimeofday () -. ph2_t0 in
  (* Phase 3: one task per (workload, binary version) cell. *)
  let versions = V_vrp :: V_vrp_conv :: List.map (fun l -> V_vrs l) costs in
  let cells =
    List.concat_map (fun bi -> List.map (fun v -> (bi, v)) versions) base_infos
  in
  let run_cell (bi, v) =
    let wname = bi.bw.Workload.name in
    let sim ~policy p = sim ~spill_bytes_of:bi.b_spill_fn ~policy p in
    match v with
    | V_vrp ->
      let st =
        run_pass_chain bi eval_input "cleanup,vrp,encode-widths,cleanup"
      in
      let p = st.Pass.prog in
      let vrp_sw = sim ~policy:Policy.Software p in
      check_checksum wname bi.ref_checksum vrp_sw "VRP";
      let vrp_sig = sim ~policy:Policy.Sw_plus_significance p in
      let vrp_size = sim ~policy:Policy.Sw_plus_size p in
      R_vrp (vrp_sw, vrp_sig, vrp_size)
    | V_vrp_conv ->
      let st =
        run_pass_chain bi eval_input
          "cleanup,vrp:variant=conventional,encode-widths,cleanup"
      in
      let s = sim ~policy:Policy.Software st.Pass.prog in
      check_checksum wname bi.ref_checksum s "conventional VRP";
      R_vrp_conv s
    | V_vrs label ->
      progress (Printf.sprintf "%s/vrs%d" wname label);
      let st =
        run_pass_chain bi Workload.Train
          (Printf.sprintf "%s,vrs:cost=%d,cleanup" profile_chain label)
      in
      let p = st.Pass.prog in
      let rep =
        match st.Pass.report with Some r -> r | None -> assert false
      in
      Workload.set_scale p eval_input;
      let stats = sim ~policy:Policy.Software p in
      check_checksum wname bi.ref_checksum stats
        (Printf.sprintf "VRS %d" label);
      let anchor =
        if label = anchor_label then begin
          let vrs_sig = sim ~policy:Policy.Sw_plus_significance p in
          let vrs_size = sim ~policy:Policy.Sw_plus_size p in
          let spec_frac, guard_frac = runtime_specialization p rep eval_input in
          Some (vrs_sig, vrs_size, spec_frac, guard_frac)
        end
        else None
      in
      R_vrs { label; stats; summary = summarize_report rep; anchor }
  in
  let ph3_t0 = Unix.gettimeofday () in
  let cell_results =
    Span.with_ ~name:"collect:versions" (fun () -> Pool.map ~jobs run_cell cells)
  in
  let ph3_s = Unix.gettimeofday () -. ph3_t0 in
  (* Phase 4: analyze-throughput microbench, one [Vrp.analyze] per
     workload on the cleaned train-scaled program.  Runs sequentially —
     the numbers feed the CI regression gate, and co-scheduling them with
     other tasks would put domain contention into the timings. *)
  let ph4_t0 = Unix.gettimeofday () in
  let analyze =
    Span.with_ ~name:"collect:analyze-bench" @@ fun () ->
    List.map
      (fun bi ->
        progress (bi.bw.Workload.name ^ "/analyze-bench");
        let st, _ = Pass.run "cleanup" (scaled_copy bi.pristine Workload.Train) in
        let p = st.Pass.prog in
        let best = ref infinity in
        let last = ref None in
        for _ = 1 to 5 do
          let t0 = Unix.gettimeofday () in
          let r = Vrp.analyze p in
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt;
          last := Some r
        done;
        let r = match !last with Some r -> r | None -> assert false in
        let t0 = Unix.gettimeofday () in
        ignore (Vrp.analyze ~engine:Vrp.Naive p);
        let naive_s = Unix.gettimeofday () -. t0 in
        let st = Vrp.fixpoint_stats r in
        ( bi.bw.Workload.name,
          {
            ab_seconds = !best;
            ab_naive_seconds = naive_s;
            ab_visits = st.Vrp.visits;
            ab_rounds = st.Vrp.rounds;
            ab_defs = Vrp.defs_analyzed r;
          } ))
      base_infos
  in
  let ph4_s = Unix.gettimeofday () -. ph4_t0 in
  (* Reassemble in workload order: cells were emitted per workload, in
     [versions] order, and the pool preserves submission order. *)
  let nversions = List.length versions in
  let workloads =
    List.mapi
      (fun i bi ->
        let mine =
          List.filteri
            (fun j _ -> j >= i * nversions && j < (i + 1) * nversions)
            cell_results
        in
        let vrp_sw, vrp_sig, vrp_size =
          match List.nth mine 0 with
          | R_vrp (a, b, c) -> (a, b, c)
          | _ -> assert false
        in
        let vrpconv_sw =
          match List.nth mine 1 with R_vrp_conv s -> s | _ -> assert false
        in
        let vrs_runs =
          List.filter_map
            (function
              | R_vrs r -> Some r
              | R_vrp _ | R_vrp_conv _ -> None)
            mine
        in
        let vrs50_sig, vrs50_size, spec_frac, guard_frac =
          match
            List.find_map (fun (r : _) ->
                match r with
                | { anchor = Some (a, b, c, d); _ } -> Some (a, b, c, d)
                | _ -> None)
              vrs_runs
          with
          | Some x -> x
          | None -> assert false
        in
        {
          wname = bi.bw.Workload.name;
          static_instructions = bi.b_static;
          spill_slots_bytes = bi.b_spill_slots;
          spill_slots_naive_bytes = bi.b_spill_naive;
          base_none = bi.b_none;
          base_hwsig = bi.b_hwsig;
          base_hwsize = bi.b_hwsize;
          vrp_sw;
          vrpconv_sw;
          vrp_sig;
          vrp_size;
          vrs = List.map (fun r -> (r.label, r.stats)) vrs_runs;
          vrs50_sig;
          vrs50_size;
          vrs_reports = List.map (fun r -> (r.label, r.summary)) vrs_runs;
          vrs50_spec_frac = spec_frac;
          vrs50_guard_frac = guard_frac;
        })
      base_infos
  in
  ( { workloads; analyze; fleet = None; quick },
    [ ("baselines", ph1_s); ("analyses", ph_an_s); ("versions", ph3_s);
      ("analyze-bench", ph4_s) ] )

let collect ?quick ?only ?progress ?jobs () =
  fst (collect_timed ?quick ?only ?progress ?jobs ())

(* --- serialization ---------------------------------------------------------- *)

let all_iclasses =
  [ Instr.C_add; Instr.C_sub; Instr.C_mul; Instr.C_and; Instr.C_or;
    Instr.C_xor; Instr.C_shift; Instr.C_cmp; Instr.C_cmov; Instr.C_msk;
    Instr.C_load; Instr.C_store; Instr.C_move; Instr.C_call; Instr.C_other ]

let iclass_of_name n =
  match
    List.find_opt (fun c -> String.equal (Instr.iclass_name c) n) all_iclasses
  with
  | Some c -> c
  | None -> raise (Json.Parse_error (Printf.sprintf "unknown iclass %S" n))

let width_of_bits = function
  | 8 -> Width.W8
  | 16 -> Width.W16
  | 32 -> Width.W32
  | 64 -> Width.W64
  | b -> raise (Json.Parse_error (Printf.sprintf "unknown width %d" b))

let structure_of_name n =
  match
    List.find_opt (fun s -> String.equal (Ep.structure_name s) n)
      Ep.all_structures
  with
  | Some s -> s
  | None -> raise (Json.Parse_error (Printf.sprintf "unknown structure %S" n))

let iclass_rank c =
  let rec go i = function
    | [] -> assert false
    | c' :: tl -> if c = c' then i else go (i + 1) tl
  in
  go 0 all_iclasses

let stats_to_json (s : Pipeline.stats) =
  let class_width =
    Hashtbl.fold (fun (ic, w) n acc -> ((ic, w), n) :: acc) s.class_width []
    |> List.sort (fun ((c1, w1), _) ((c2, w2), _) ->
           match Int.compare (iclass_rank c1) (iclass_rank c2) with
           | 0 -> Int.compare (Width.bits w1) (Width.bits w2)
           | c -> c)
    |> List.map (fun ((ic, w), n) ->
           Json.Obj
             [ ("class", Json.Str (Instr.iclass_name ic));
               ("width", Json.Int (Width.bits w));
               ("n", Json.Int n) ])
  in
  let opcode_counts =
    Hashtbl.fold (fun op n acc -> (op, n) :: acc) s.opcode_counts []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (op, n) -> Json.Arr [ Json.Int op; Json.Int n ])
  in
  let energy =
    List.map
      (fun (st, e) -> (Ep.structure_name st, Json.Float e))
      (Account.by_structure s.energy)
  in
  Json.Obj
    [
      ("cycles", Json.Int s.cycles);
      ("instructions", Json.Int s.instructions);
      ("branches", Json.Int s.branches);
      ("mispredictions", Json.Int s.mispredictions);
      ("icache_misses", Json.Int s.icache_misses);
      ("dcache_accesses", Json.Int s.dcache_accesses);
      ("dcache_misses", Json.Int s.dcache_misses);
      ("l2_misses", Json.Int s.l2_misses);
      (* Derived, for external consumers (plots, CI dashboards); of_json
         ignores both. *)
      ("ipc", Json.Float (Pipeline.ipc s));
      ("energy_nj", Json.Float (Account.total s.energy));
      ("spill_traffic", Json.Float (Account.spill_traffic s.energy));
      ("energy", Json.Obj energy);
      ("class_width", Json.Arr class_width);
      ("opcode_counts", Json.Arr opcode_counts);
      ( "sigbyte_histogram",
        Json.Arr
          (Array.to_list (Array.map (fun n -> Json.Int n) s.sigbyte_histogram))
      );
      ("checksum", Json.Str (Int64.to_string s.checksum));
    ]

let stats_of_json j : Pipeline.stats =
  let class_width = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace class_width
        ( iclass_of_name (Json.get_string "class" e),
          width_of_bits (Json.get_int "width" e) )
        (Json.get_int "n" e))
    (Json.get_list "class_width" j);
  let opcode_counts = Hashtbl.create 16 in
  List.iter
    (function
      | Json.Arr [ Json.Int op; Json.Int n ] ->
        Hashtbl.replace opcode_counts op n
      | _ -> raise (Json.Parse_error "opcode_counts: expected [op, n] pairs"))
    (Json.get_list "opcode_counts" j);
  (* Absent in files written before the spill-traffic series. *)
  let spill =
    match Json.member "spill_traffic" j with
    | Json.Null -> 0.0
    | Json.Float f -> f
    | Json.Int i -> float_of_int i
    | _ -> raise (Json.Parse_error "spill_traffic: expected a number")
  in
  let energy =
    match Json.member "energy" j with
    | Json.Obj kvs ->
      Account.of_values ~spill
        (List.map
           (fun (k, v) ->
             match v with
             | Json.Float f -> (structure_of_name k, f)
             | Json.Int i -> (structure_of_name k, float_of_int i)
             | _ ->
               raise
                 (Json.Parse_error
                    (Printf.sprintf "energy.%s: expected a number" k)))
           kvs)
    | _ -> raise (Json.Parse_error "energy: expected an object")
  in
  let sigbyte_histogram =
    Json.get_list "sigbyte_histogram" j
    |> List.map (function
         | Json.Int n -> n
         | _ -> raise (Json.Parse_error "sigbyte_histogram: expected ints"))
    |> Array.of_list
  in
  let checksum =
    match Int64.of_string_opt (Json.get_string "checksum" j) with
    | Some c -> c
    | None -> raise (Json.Parse_error "checksum: expected an int64 string")
  in
  {
    cycles = Json.get_int "cycles" j;
    instructions = Json.get_int "instructions" j;
    branches = Json.get_int "branches" j;
    mispredictions = Json.get_int "mispredictions" j;
    icache_misses = Json.get_int "icache_misses" j;
    dcache_accesses = Json.get_int "dcache_accesses" j;
    dcache_misses = Json.get_int "dcache_misses" j;
    l2_misses = Json.get_int "l2_misses" j;
    energy;
    class_width;
    opcode_counts;
    sigbyte_histogram;
    checksum;
  }

let summary_to_json (s : vrs_summary) =
  Json.Obj
    [
      ("specialized", Json.Int s.points_specialized);
      ("dependent", Json.Int s.points_dependent);
      ("no_benefit", Json.Int s.points_no_benefit);
      ("static_cloned", Json.Int s.static_cloned);
      ("static_eliminated", Json.Int s.static_eliminated);
    ]

let summary_of_json j =
  {
    points_specialized = Json.get_int "specialized" j;
    points_dependent = Json.get_int "dependent" j;
    points_no_benefit = Json.get_int "no_benefit" j;
    static_cloned = Json.get_int "static_cloned" j;
    static_eliminated = Json.get_int "static_eliminated" j;
  }

let wres_to_json (w : wres) =
  Json.Obj
    [
      ("name", Json.Str w.wname);
      ("static_instructions", Json.Int w.static_instructions);
      ("spill_slots_bytes", Json.Int w.spill_slots_bytes);
      ("spill_slots_naive_bytes", Json.Int w.spill_slots_naive_bytes);
      ("base_none", stats_to_json w.base_none);
      ("base_hwsig", stats_to_json w.base_hwsig);
      ("base_hwsize", stats_to_json w.base_hwsize);
      ("vrp_sw", stats_to_json w.vrp_sw);
      ("vrpconv_sw", stats_to_json w.vrpconv_sw);
      ("vrp_sig", stats_to_json w.vrp_sig);
      ("vrp_size", stats_to_json w.vrp_size);
      ( "vrs",
        Json.Arr
          (List.map
             (fun (l, s) ->
               Json.Obj [ ("label", Json.Int l); ("stats", stats_to_json s) ])
             w.vrs) );
      ("vrs50_sig", stats_to_json w.vrs50_sig);
      ("vrs50_size", stats_to_json w.vrs50_size);
      ( "vrs_reports",
        Json.Arr
          (List.map
             (fun (l, s) ->
               Json.Obj [ ("label", Json.Int l); ("report", summary_to_json s) ])
             w.vrs_reports) );
      ("vrs50_spec_frac", Json.Float w.vrs50_spec_frac);
      ("vrs50_guard_frac", Json.Float w.vrs50_guard_frac);
    ]

let wres_of_json j =
  let stats k = stats_of_json (Json.member k j) in
  (* Absent in files written before the spill-slot series. *)
  let opt_int k =
    match Json.member k j with
    | Json.Null -> 0
    | Json.Int i -> i
    | _ -> raise (Json.Parse_error (Printf.sprintf "%s: expected an int" k))
  in
  {
    wname = Json.get_string "name" j;
    static_instructions = Json.get_int "static_instructions" j;
    spill_slots_bytes = opt_int "spill_slots_bytes";
    spill_slots_naive_bytes = opt_int "spill_slots_naive_bytes";
    base_none = stats "base_none";
    base_hwsig = stats "base_hwsig";
    base_hwsize = stats "base_hwsize";
    vrp_sw = stats "vrp_sw";
    vrpconv_sw = stats "vrpconv_sw";
    vrp_sig = stats "vrp_sig";
    vrp_size = stats "vrp_size";
    vrs =
      List.map
        (fun e -> (Json.get_int "label" e, stats_of_json (Json.member "stats" e)))
        (Json.get_list "vrs" j);
    vrs50_sig = stats "vrs50_sig";
    vrs50_size = stats "vrs50_size";
    vrs_reports =
      List.map
        (fun e ->
          (Json.get_int "label" e, summary_of_json (Json.member "report" e)))
        (Json.get_list "vrs_reports" j);
    vrs50_spec_frac = Json.get_float "vrs50_spec_frac" j;
    vrs50_guard_frac = Json.get_float "vrs50_guard_frac" j;
  }

let fleet_to_json fb =
  Json.Obj
    [
      ("shards", Json.Int fb.fb_shards);
      ("requests", Json.Int fb.fb_requests);
      ("failed", Json.Int fb.fb_failed);
      ("hedged", Json.Int fb.fb_hedged);
      ("p50_ms", Json.Float fb.fb_p50_ms);
      ("p95_ms", Json.Float fb.fb_p95_ms);
      ("p99_ms", Json.Float fb.fb_p99_ms);
    ]

let fleet_of_json j =
  {
    fb_shards = Json.get_int "shards" j;
    fb_requests = Json.get_int "requests" j;
    fb_failed = Json.get_int "failed" j;
    fb_hedged = Json.get_int "hedged" j;
    fb_p50_ms = Json.get_float "p50_ms" j;
    fb_p95_ms = Json.get_float "p95_ms" j;
    fb_p99_ms = Json.get_float "p99_ms" j;
  }

let analyze_to_json (name, ab) =
  Json.Obj
    [
      ("name", Json.Str name);
      ("seconds", Json.Float ab.ab_seconds);
      ("naive_seconds", Json.Float ab.ab_naive_seconds);
      ("visits", Json.Int ab.ab_visits);
      ("rounds", Json.Int ab.ab_rounds);
      ("defs", Json.Int ab.ab_defs);
    ]

let analyze_of_json j =
  ( Json.get_string "name" j,
    {
      ab_seconds = Json.get_float "seconds" j;
      ab_naive_seconds = Json.get_float "naive_seconds" j;
      ab_visits = Json.get_int "visits" j;
      ab_rounds = Json.get_int "rounds" j;
      ab_defs = Json.get_int "defs" j;
    } )

let format_name = "ogc-results"
let format_version = 1

let to_json t =
  Json.Obj
    ([
       ("format", Json.Str format_name);
       ("version", Json.Int format_version);
       ("quick", Json.Bool t.quick);
       ("workloads", Json.Arr (List.map wres_to_json t.workloads));
       ("analyze", Json.Arr (List.map analyze_to_json t.analyze));
     ]
    @
    match t.fleet with
    | None -> []
    | Some fb -> [ ("fleet", fleet_to_json fb) ])

let of_json j =
  (match Json.member "format" j with
  | Json.Str f when String.equal f format_name -> ()
  | _ -> raise (Json.Parse_error "not an ogc-results file"));
  (match Json.get_int "version" j with
  | 1 -> ()
  | v ->
    raise
      (Json.Parse_error (Printf.sprintf "unsupported results version %d" v)));
  {
    quick = Json.get_bool "quick" j;
    workloads = List.map wres_of_json (Json.get_list "workloads" j);
    (* Absent in files written before the analyze-throughput series. *)
    analyze =
      (match Json.member "analyze" j with
      | Json.Null -> []
      | _ -> List.map analyze_of_json (Json.get_list "analyze" j));
    (* Absent in files written before the fleet series, and in runs
       that skipped the fleet bench. *)
    fleet =
      (match Json.member "fleet" j with
      | Json.Null -> None
      | fj -> Some (fleet_of_json fj));
  }

(* --- regression comparison --------------------------------------------------- *)

type regression = {
  r_workload : string;
  r_config : string;
  r_metric : string;
  r_baseline : float;
  r_current : float;
  r_delta_frac : float;
}

let config_stats (w : wres) =
  [
    ("base_none", w.base_none);
    ("base_hwsig", w.base_hwsig);
    ("base_hwsize", w.base_hwsize);
    ("vrp_sw", w.vrp_sw);
    ("vrpconv_sw", w.vrpconv_sw);
    ("vrp_sig", w.vrp_sig);
    ("vrp_size", w.vrp_size);
  ]
  @ List.map (fun (l, s) -> (Printf.sprintf "vrs%d" l, s)) w.vrs
  @ [ ("vrs50_sig", w.vrs50_sig); ("vrs50_size", w.vrs50_size) ]

let compare_to_baseline ~time_tolerance ~baseline ~current ~threshold =
  if baseline.quick <> current.quick then
    [
      {
        r_workload = "*";
        r_config = "mode";
        r_metric = "quick";
        r_baseline = (if baseline.quick then 1.0 else 0.0);
        r_current = (if current.quick then 1.0 else 0.0);
        r_delta_frac = 1.0;
      };
    ]
  else
    List.concat_map
      (fun (cw : wres) ->
        match
          List.find_opt (fun (bw : wres) -> String.equal bw.wname cw.wname)
            baseline.workloads
        with
        | None -> []
        | Some bw ->
          let spill_cell metric base cur =
            (* Growth gate; appearing where there was none (base 0) is
               flagged outright. *)
            let delta =
              if base <= 0.0 then if cur > 0.0 then 1.0 else 0.0
              else (cur -. base) /. base
            in
            if delta > threshold then
              [
                {
                  r_workload = cw.wname;
                  r_config = "spill";
                  r_metric = metric;
                  r_baseline = base;
                  r_current = cur;
                  r_delta_frac = delta;
                };
              ]
            else []
          in
          spill_cell "spill_slots_bytes"
            (float_of_int bw.spill_slots_bytes)
            (float_of_int cw.spill_slots_bytes)
          @ spill_cell "spill_traffic"
              (Account.spill_traffic bw.base_none.Pipeline.energy)
              (Account.spill_traffic cw.base_none.Pipeline.energy)
          @ (* The width-aware win itself is gated: once a workload's
               slots are provably narrower than naive 8-byte slots, a
               change that loses that property regresses, whatever the
               byte totals do. *)
          (if
             bw.spill_slots_bytes < bw.spill_slots_naive_bytes
             && cw.spill_slots_naive_bytes > 0
             && cw.spill_slots_bytes >= cw.spill_slots_naive_bytes
           then
             [
               {
                 r_workload = cw.wname;
                 r_config = "spill";
                 r_metric = "spill_width_win";
                 r_baseline = float_of_int bw.spill_slots_bytes;
                 r_current = float_of_int cw.spill_slots_bytes;
                 r_delta_frac = 1.0;
               };
             ]
           else [])
          @
          let bcfg = config_stats bw in
          List.concat_map
            (fun (cname, cs) ->
              match List.assoc_opt cname bcfg with
              | None -> []
              | Some bs ->
                let cell metric ~worse base cur =
                  let delta = worse base cur in
                  if delta > threshold then
                    [
                      {
                        r_workload = cw.wname;
                        r_config = cname;
                        r_metric = metric;
                        r_baseline = base;
                        r_current = cur;
                        r_delta_frac = delta;
                      };
                    ]
                  else []
                in
                (* Energy is worse when it grows, IPC when it drops. *)
                cell "energy_nj"
                  ~worse:(fun b c -> if b <= 0.0 then 0.0 else (c -. b) /. b)
                  (Account.total bs.Pipeline.energy)
                  (Account.total cs.Pipeline.energy)
                @ cell "ipc"
                    ~worse:(fun b c -> if b <= 0.0 then 0.0 else (b -. c) /. b)
                    (Pipeline.ipc bs) (Pipeline.ipc cs))
            (config_stats cw))
      current.workloads
    @ (* Analyze-throughput series: visit counts are deterministic and
         gated at the strict threshold; wall time is noisy and gets its
         own (looser) tolerance. *)
    List.concat_map
      (fun (name, ca) ->
        match List.assoc_opt name baseline.analyze with
        | None -> []
        | Some ba ->
          let cell metric tol base cur =
            let delta = if base <= 0.0 then 0.0 else (cur -. base) /. base in
            if delta > tol then
              [
                {
                  r_workload = name;
                  r_config = "analyze";
                  r_metric = metric;
                  r_baseline = base;
                  r_current = cur;
                  r_delta_frac = delta;
                };
              ]
            else []
          in
          cell "analyze_visits" threshold
            (float_of_int ba.ab_visits)
            (float_of_int ca.ab_visits)
          @ cell "analyze_seconds" time_tolerance ba.ab_seconds ca.ab_seconds)
      current.analyze
    @ (* Fleet series: failed submissions are gated exactly (any failed
         request regresses the zero-failure criterion); client-observed
         latency percentiles are wall time and get the loose tolerance.
         Only comparable runs (same shard and request counts) compare. *)
    (match (baseline.fleet, current.fleet) with
    | Some bf, Some cf
      when bf.fb_shards = cf.fb_shards && bf.fb_requests = cf.fb_requests ->
      let cell metric tol base cur =
        let delta = if base <= 0.0 then 0.0 else (cur -. base) /. base in
        if delta > tol then
          [
            {
              r_workload = "*";
              r_config = "fleet";
              r_metric = metric;
              r_baseline = base;
              r_current = cur;
              r_delta_frac = delta;
            };
          ]
        else []
      in
      (if cf.fb_failed > bf.fb_failed then
         [
           {
             r_workload = "*";
             r_config = "fleet";
             r_metric = "failed";
             r_baseline = float_of_int bf.fb_failed;
             r_current = float_of_int cf.fb_failed;
             r_delta_frac = 1.0;
           };
         ]
       else [])
      @ cell "fleet_p50_ms" time_tolerance bf.fb_p50_ms cf.fb_p50_ms
      @ cell "fleet_p95_ms" time_tolerance bf.fb_p95_ms cf.fb_p95_ms
    | _ -> [])

let render_regressions = function
  | [] -> "no regressions\n"
  | rs ->
    Render.table
      ~header:[ "Workload"; "Config"; "Metric"; "baseline"; "current"; "worse by" ]
      (List.map
         (fun r ->
           [
             r.r_workload;
             r.r_config;
             r.r_metric;
             Printf.sprintf "%.4g" r.r_baseline;
             Printf.sprintf "%.4g" r.r_current;
             Render.pct r.r_delta_frac;
           ])
         rs)

(* --- aggregation ---------------------------------------------------------- *)

let width_classes =
  Instr.all_alu_classes @ [ Instr.C_move ]

let width_distribution (s : Pipeline.stats) =
  let totals = Hashtbl.create 4 in
  let grand = ref 0 in
  Hashtbl.iter
    (fun (ic, w) n ->
      if List.mem ic width_classes then begin
        Hashtbl.replace totals w (n + Option.value ~default:0 (Hashtbl.find_opt totals w));
        grand := !grand + n
      end)
    s.class_width;
  List.map
    (fun w ->
      ( w,
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt totals w))
        /. float_of_int (max 1 !grand) ))
    Width.all

let average_distribution t select =
  let dists = List.map (fun w -> width_distribution (select w)) t.workloads in
  let n = float_of_int (max 1 (List.length dists)) in
  List.map
    (fun w ->
      ( w,
        List.fold_left (fun acc d -> acc +. List.assoc w d) 0.0 dists /. n ))
    Width.all

let class_table t select =
  let acc = Hashtbl.create 32 in
  let grand = ref 0 in
  List.iter
    (fun wr ->
      let s = select wr in
      Hashtbl.iter
        (fun (ic, w) n ->
          if List.mem ic Instr.all_alu_classes then begin
            Hashtbl.replace acc (ic, w)
              (n + Option.value ~default:0 (Hashtbl.find_opt acc (ic, w)));
            grand := !grand + n
          end)
        s.Pipeline.class_width)
    t.workloads;
  (* Include every committed instruction in the denominator of the share
     column, as the paper does ("percentage of run-time instructions"). *)
  let total_committed =
    List.fold_left (fun a wr -> a + (select wr).Pipeline.instructions) 0 t.workloads
  in
  List.filter_map
    (fun ic ->
      let class_total =
        List.fold_left
          (fun a w -> a + Option.value ~default:0 (Hashtbl.find_opt acc (ic, w)))
          0 Width.all
      in
      if class_total = 0 then None
      else
        let share = float_of_int class_total /. float_of_int (max 1 total_committed) in
        let per_width =
          List.map
            (fun w ->
              ( w,
                float_of_int
                  (Option.value ~default:0 (Hashtbl.find_opt acc (ic, w)))
                /. float_of_int class_total ))
            Width.all
        in
        Some (ic, share, per_width))
    Instr.all_alu_classes
  |> List.sort (fun (_, a, _) (_, b, _) -> Float.compare b a)

let mean t f =
  let xs = List.map f t.workloads in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

let total_energy (s : Pipeline.stats) = Account.total s.Pipeline.energy

let energy_saving w ~(improved : Pipeline.stats) =
  Account.savings ~baseline:(total_energy w.base_none)
    ~improved:(total_energy improved)

let time_saving w ~(improved : Pipeline.stats) =
  Account.savings
    ~baseline:(float_of_int w.base_none.cycles)
    ~improved:(float_of_int improved.Pipeline.cycles)

let ed2_saving w ~(improved : Pipeline.stats) =
  Account.savings
    ~baseline:
      (Account.ed2 ~energy:(total_energy w.base_none) ~cycles:w.base_none.Pipeline.cycles)
    ~improved:
      (Account.ed2 ~energy:(total_energy improved) ~cycles:improved.Pipeline.cycles)

let structure_saving w ~(improved : Pipeline.stats) s =
  Account.savings
    ~baseline:(Account.energy_of w.base_none.Pipeline.energy s)
    ~improved:(Account.energy_of improved.Pipeline.energy s)
