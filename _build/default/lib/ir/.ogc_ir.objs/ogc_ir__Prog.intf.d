lib/ir/prog.mli: Bytes Format Hashtbl Instr Label Ogc_isa Reg
