(* Tests for the IR substrate: bitsets, CFG analyses, use-def chains,
   validation and the reference interpreter. *)

open Ogc_isa
open Ogc_ir
module Gen_minic = Ogc_fuzz.Gen_minic

let lbl = Alcotest.testable Label.pp Label.equal
let r n = Reg.of_int n

(* A diamond with a loop around it:
     L0: entry -> L1
     L1: header; branch r1 -> L2 / L3
     L2: -> L4      L3: -> L4
     L4: branch r2 -> L1 (back edge) / L5
     L5: return *)
let diamond_loop () =
  let counter = ref 0 in
  let fresh_iid () = incr counter; !counter in
  let b = Builder.create ~fresh_iid ~fname:"f" ~arity:0 in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  let l3 = Builder.new_block b in
  let l4 = Builder.new_block b in
  let l5 = Builder.new_block b in
  Builder.switch_to b l0;
  ignore (Builder.ins b (Instr.Li { dst = r 1; imm = 0L }));
  ignore (Builder.ins b (Instr.Li { dst = r 2; imm = 0L }));
  Builder.terminate b (Prog.Jump l1);
  Builder.switch_to b l1;
  ignore (Builder.ins b (Instr.Alu { op = Instr.Add; width = Width.W64;
                                     src1 = r 1; src2 = Instr.Imm 1L; dst = r 1 }));
  Builder.terminate b
    (Prog.Branch { cond = Instr.Ne; src = r 1; if_true = l2; if_false = l3 });
  Builder.switch_to b l2;
  ignore (Builder.ins b (Instr.Li { dst = r 3; imm = 1L }));
  Builder.terminate b (Prog.Jump l4);
  Builder.switch_to b l3;
  ignore (Builder.ins b (Instr.Li { dst = r 3; imm = 2L }));
  Builder.terminate b (Prog.Jump l4);
  Builder.switch_to b l4;
  ignore (Builder.ins b (Instr.Alu { op = Instr.Add; width = Width.W64;
                                     src1 = r 3; src2 = Instr.Reg (r 1); dst = r 2 }));
  Builder.terminate b
    (Prog.Branch { cond = Instr.Lt; src = r 2; if_true = l1; if_false = l5 });
  Builder.switch_to b l5;
  ignore (Builder.ins b (Instr.Alu { op = Instr.Or; width = Width.W64;
                                     src1 = r 2; src2 = Instr.Imm 0L;
                                     dst = Reg.ret }));
  Builder.terminate b Prog.Return;
  (Builder.finish b ~frame_size:0, (l0, l1, l2, l3, l4, l5))

(* --- Bitset ----------------------------------------------------------------- *)

let test_bitset () =
  let s = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.cardinal s);
  Bitset.set s 0;
  Bitset.set s 63;
  Bitset.set s 64;
  Bitset.set s 99;
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem s 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem s 1);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements" [ 0; 63; 64; 99 ] (Bitset.elements s);
  Bitset.clear s 63;
  Alcotest.(check bool) "cleared" false (Bitset.mem s 63);
  let t = Bitset.create 100 in
  Bitset.set t 5;
  Alcotest.(check bool) "union changes" true (Bitset.union_into ~into:t s);
  Alcotest.(check bool) "union stable" false (Bitset.union_into ~into:t s);
  Alcotest.(check int) "after union" 4 (Bitset.cardinal t);
  Bitset.diff_into ~into:t s;
  Alcotest.(check (list int)) "after diff" [ 5 ] (Bitset.elements t);
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index 100")
    (fun () -> Bitset.set s 100)

(* --- CFG -------------------------------------------------------------------- *)

let test_cfg () =
  let f, (l0, l1, l2, l3, l4, l5) = diamond_loop () in
  let cfg = Cfg.of_func f in
  Alcotest.(check int) "blocks" 6 (Cfg.num_blocks cfg);
  Alcotest.(check (list lbl)) "succ l1" [ l2; l3 ] (Cfg.succs cfg l1);
  Alcotest.(check (list lbl)) "pred l4" [ l2; l3 ] (Cfg.preds cfg l4);
  Alcotest.(check (list lbl)) "pred l1" [ l0; l4 ] (Cfg.preds cfg l1);
  Alcotest.(check bool) "reachable" true (Cfg.is_reachable cfg l5);
  let rpo = Cfg.reverse_postorder cfg in
  Alcotest.check lbl "rpo starts at entry" l0 (List.hd rpo);
  Alcotest.(check int) "rpo covers all" 6 (List.length rpo);
  (* header precedes its loop body in RPO *)
  let pos l = Option.get (List.find_index (Label.equal l) rpo) in
  Alcotest.(check bool) "l1 before l4" true (pos l1 < pos l4)

let test_dom () =
  let f, (l0, l1, l2, l3, l4, l5) = diamond_loop () in
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  Alcotest.(check (option lbl)) "idom l1" (Some l0) (Dom.idom dom l1);
  Alcotest.(check (option lbl)) "idom l2" (Some l1) (Dom.idom dom l2);
  Alcotest.(check (option lbl)) "idom l4 is the branch head" (Some l1)
    (Dom.idom dom l4);
  Alcotest.(check (option lbl)) "idom l5" (Some l4) (Dom.idom dom l5);
  Alcotest.(check (option lbl)) "entry has none" None (Dom.idom dom l0);
  Alcotest.(check bool) "l1 dominates l5" true (Dom.dominates dom l1 l5);
  Alcotest.(check bool) "l2 not dominates l4" false (Dom.dominates dom l2 l4);
  Alcotest.(check bool) "reflexive" true (Dom.dominates dom l3 l3)

let test_loops () =
  let f, (_, l1, l2, l3, l4, l5) = diamond_loop () in
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  let loops = Loops.compute cfg dom in
  Alcotest.(check int) "one loop" 1 (List.length (Loops.loops loops));
  let lo = List.hd (Loops.loops loops) in
  Alcotest.check lbl "header" l1 lo.Loops.header;
  Alcotest.(check (list lbl)) "latch" [ l4 ] lo.Loops.latches;
  Alcotest.(check int) "body size" 4 (Label.Set.cardinal lo.Loops.body);
  Alcotest.(check bool) "body has l2 l3" true
    (Label.Set.mem l2 lo.Loops.body && Label.Set.mem l3 lo.Loops.body);
  Alcotest.(check bool) "exit edge to l5" true
    (List.exists (fun (_, t) -> Label.equal t l5) lo.Loops.exits);
  Alcotest.(check int) "depth of l4" 1 (Loops.depth loops l4);
  Alcotest.(check int) "depth of l5" 0 (Loops.depth loops l5)

let test_liveness () =
  let f, (l0, l1, _, _, l4, l5) = diamond_loop () in
  let cfg = Cfg.of_func f in
  let live = Liveness.compute f cfg in
  (* r1 is live around the loop; r2 is live at the l4 branch. *)
  Alcotest.(check bool) "r1 live into l1" true
    (Reg.Set.mem (r 1) (Liveness.live_in live l1));
  Alcotest.(check bool) "r2 live into l5" true
    (Reg.Set.mem (r 2) (Liveness.live_in live l5));
  Alcotest.(check bool) "r3 not live into l1" false
    (Reg.Set.mem (r 3) (Liveness.live_in live l1));
  Alcotest.(check bool) "nothing live into entry" false
    (Reg.Set.mem (r 1) (Liveness.live_in live l0));
  Alcotest.(check bool) "r2 live out of l4 (branch + successors)" true
    (Reg.Set.mem (r 2) (Liveness.live_out live l4))

let test_usedef () =
  let f, _ = diamond_loop () in
  let cfg = Cfg.of_func f in
  let ud = Usedef.compute f cfg in
  (* Defs: 32 entry pseudo-defs + 7 instruction defs. *)
  Alcotest.(check int) "def count" 39 (Usedef.num_defs ud);
  (* The add in L1 (iid 4; terminators consume iids 3/5/...) reads r1
     from the entry init (iid 1) and itself (loop-carried). *)
  let reaching = Usedef.reaching_uses ud ~use_iid:4 ~reg:(r 1) in
  let sites =
    List.map
      (fun di ->
        match (Usedef.def ud di).Usedef.site with
        | Usedef.Entry -> -1
        | Usedef.At iid -> iid)
      reaching
    |> List.sort compare
  in
  Alcotest.(check (list int)) "loop-carried reaching defs" [ 1; 4 ] sites;
  (* Dependents of the loop add include the final Or (iid 12). *)
  let deps = Usedef.dependents ud ~iid:4 in
  Alcotest.(check bool) "or depends on add" true (Hashtbl.mem deps 12);
  Alcotest.(check bool) "r3 li does not appear" false (Hashtbl.mem deps 6)

(* --- call graph ------------------------------------------------------------------ *)

let test_callgraph () =
  let p = Ogc_minic.Minic.compile {|
    int leaf(int x) { return x + 1; }
    int middle(int x) { return leaf(x) + leaf(x + 1); }
    int looper(int x) { if (x <= 0) return 0; return looper(x - 1) + 1; }
    int uncalled(int x) { return x; }
    int main() {
      emit(middle(3));
      emit(looper(4));
      return 0;
    }
  |} in
  let cg = Callgraph.compute p in
  Alcotest.(check (list string)) "main calls" [ "looper"; "middle" ]
    (List.sort compare (Callgraph.callees cg "main"));
  Alcotest.(check (list string)) "leaf called by" [ "middle" ]
    (Callgraph.callers cg "leaf");
  Alcotest.(check int) "two call sites of leaf" 2
    (List.length (Callgraph.call_sites cg "leaf"));
  Alcotest.(check bool) "looper recursive" true (Callgraph.is_recursive cg "looper");
  Alcotest.(check bool) "leaf not recursive" false (Callgraph.is_recursive cg "leaf");
  (* bottom-up: callees before callers *)
  let order = Callgraph.bottom_up cg in
  let pos f = Option.get (List.find_index (String.equal f) order) in
  Alcotest.(check bool) "leaf before middle" true (pos "leaf" < pos "middle");
  Alcotest.(check bool) "middle before main" true (pos "middle" < pos "main");
  Alcotest.(check bool) "uncalled function still ordered" true
    (List.mem "uncalled" order)

let test_callgraph_mutual_recursion () =
  let p = Ogc_minic.Minic.compile {|
    int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
    int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
    int main() { emit(is_even(10)); return 0; }
  |} in
  let cg = Callgraph.compute p in
  Alcotest.(check bool) "mutual recursion detected" true
    (Callgraph.is_recursive cg "is_even" && Callgraph.is_recursive cg "is_odd")

(* --- Validation --------------------------------------------------------------- *)

let compile src = Ogc_minic.Minic.compile src

let test_validate () =
  let p = compile "int main() { return 0; }" in
  Validate.program p;
  (* Break a branch target. *)
  let f = Prog.find_func p "main" in
  let bad = Label.of_int 999 in
  f.Prog.blocks.(0).Prog.term <- Prog.Jump bad;
  Alcotest.check_raises "dangling label"
    (Validate.Invalid "main: label L999 out of range") (fun () ->
      Validate.program p)

let test_validate_duplicate_iids () =
  let p = compile "int main() { return 0; }" in
  let f = Prog.find_func p "main" in
  (* Duplicate an instruction id by copying a block body element. *)
  let b = f.Prog.blocks.(2) in
  (match b.Prog.body with
  | [||] -> ()
  | body -> b.Prog.body <- Array.append body [| body.(0) |]);
  if Array.length b.Prog.body > 1 then
    Alcotest.check_raises "duplicate iid"
      (Validate.Invalid
         (Printf.sprintf "main: duplicate instruction id %d"
            b.Prog.body.(0).Prog.iid))
      (fun () -> Validate.program p)

(* --- Interpreter ---------------------------------------------------------------- *)

let run src = Interp.run (compile src)

let test_interp_arith () =
  let out = run {|
    int main() {
      emit(7 * 6);
      emit(100 / 7);
      emit(100 % 7);
      emit(-7 >> 1);
      emit(1 << 10);
      emit(0x7fffffff + 1);   // 32-bit wrap
      long big = 0x7fffffff;
      emit(big + 1);          // 64-bit: no wrap
      return 0;
    }
  |} in
  Alcotest.(check (list int64))
    "values"
    [ 42L; 14L; 2L; -4L; 1024L; Int64.neg 0x8000_0000L; 0x8000_0000L ]
    out.Interp.emitted

let test_interp_memory () =
  let out = run {|
    char bytes[8];
    short halves[4];
    long words[2];
    int main() {
      bytes[0] = (char)300;       // truncates to 44
      halves[1] = (short)(-70000); // truncates
      words[1] = 1;
      words[1] = words[1] << 40;
      emit(bytes[0]);
      emit(halves[1]);
      emit(words[1]);
      return 0;
    }
  |} in
  Alcotest.(check (list int64)) "memory round trips"
    [ 44L; Int64.of_int (-70000 land 0xFFFF |> fun x -> if x >= 32768 then x - 65536 else x);
      Int64.shift_left 1L 40 ]
    out.Interp.emitted

let test_interp_calls () =
  let out = run {|
    int twice(int x) { return x * 2; }
    long sum3(long a, long b, long c) { return a + b + c; }
    int main() {
      emit(twice(21));
      emit(sum3(1, 2, 3));
      emit(twice(twice(10)));
      return 0;
    }
  |} in
  Alcotest.(check (list int64)) "calls" [ 42L; 6L; 40L ] out.Interp.emitted

let test_interp_fault_oob () =
  let p = compile {|
    int a[4];
    int main() {
      int i = 5000000;
      a[i] = 1;
      return 0;
    }
  |} in
  match Interp.run p with
  | exception Interp.Fault _ -> ()
  | _ -> Alcotest.fail "expected a memory fault"

let test_interp_budget () =
  let p = compile "int main() { while (1) { } return 0; }" in
  match Interp.run ~config:{ Interp.default_config with max_steps = 1000 } p with
  | exception Interp.Fault msg ->
    Alcotest.(check bool) "mentions budget" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected a step-budget fault"

let test_interp_bb_counts () =
  let p = compile {|
    int main() {
      long s = 0;
      for (int i = 0; i < 10; i++) s += i;
      emit(s);
      return 0;
    }
  |} in
  let counts : Interp.bb_counts = Hashtbl.create 8 in
  let out = Interp.run ~bb_counts:counts p in
  Alcotest.(check (list int64)) "sum" [ 45L ] out.Interp.emitted;
  (* Some block must execute exactly 10 times (the loop body). *)
  let tens = ref 0 in
  Hashtbl.iter
    (fun _ arr -> Array.iter (fun c -> if c = 10 then incr tens) arr)
    counts;
  Alcotest.(check bool) "a block ran 10 times" true (!tens >= 1)

let test_interp_events () =
  let p = compile {|
    int main() {
      long s = 1;
      if (s > 0) s = 41 + s;
      emit(s);
      return 0;
    }
  |} in
  let branches = ref 0 and instrs = ref 0 and returns = ref 0 in
  let on_event = function
    | Interp.E_branch _ -> incr branches
    | Interp.E_ins _ -> incr instrs
    | Interp.E_jump _ -> ()
    | Interp.E_return _ -> incr returns
  in
  let out = Interp.run ~on_event p in
  Alcotest.(check int) "one conditional branch" 1 !branches;
  Alcotest.(check int) "one return" 1 !returns;
  Alcotest.(check bool) "instructions seen" true (!instrs > 3);
  Alcotest.(check (list int64)) "result" [ 42L ] out.Interp.emitted

let test_global_addresses () =
  let p = compile {|
    long a;
    char b[100];
    long c;
    int main() { return 0; }
  |} in
  let addrs = Interp.global_addresses p in
  let get n = List.assoc n addrs in
  Alcotest.(check bool) "above virtual base" true
    (Int64.compare (get "a") Interp.virtual_base > 0);
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun (_, a) -> Int64.rem a 8L = 0L) addrs);
  Alcotest.(check bool) "non-overlapping" true
    (Int64.compare (get "b") (Int64.add (get "a") 8L) >= 0
     && Int64.compare (get "c") (Int64.add (get "b") 100L) >= 0);
  (* Addresses need 33-40 bits, matching the paper's Figure 12 peak. *)
  Alcotest.(check bool) "address width is 5 bytes" true
    (let bytes = Ogc_gating.Sigbytes.significant_bytes (get "a") in
     bytes = 5)

(* --- assembly round-trip --------------------------------------------------------- *)

let test_asm_roundtrip_simple () =
  let p = compile {|
    long counter = 42;
    char tab[5] = {1, 2, 3};
    int helper(int x) { return x * 3 + 1; }
    int main() {
      long s = counter;
      for (int i = 0; i < 10; i++) s += helper(i) > 5 ? i : -i;
      emit(s);
      return 0;
    }
  |} in
  let text = Asm.to_string p in
  let q = Asm.parse text in
  Validate.program q;
  Alcotest.(check string) "round-trip is a fixpoint" text (Asm.to_string q);
  Alcotest.(check int64) "same behaviour" (Interp.run p).Interp.checksum
    (Interp.run q).Interp.checksum;
  Alcotest.(check int) "same static size" (Prog.num_static_ins p)
    (Prog.num_static_ins q)

let test_asm_preserves_iids () =
  let p = compile "int main() { emit(1 + 2); return 0; }" in
  let q = Asm.parse (Asm.to_string p) in
  let ids prog =
    let acc = ref [] in
    Prog.iter_all_ins prog (fun _ _ ins -> acc := ins.Prog.iid :: !acc);
    List.sort compare !acc
  in
  Alcotest.(check (list int)) "iids preserved" (ids p) (ids q)

let test_asm_errors () =
  let expect_err text sub =
    match Asm.parse text with
    | exception Asm.Error msg ->
      let n = String.length sub in
      let rec go i =
        i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
      in
      Alcotest.(check bool) (sub ^ " in " ^ msg) true (go 0)
    | _ -> Alcotest.fail ("expected parse error for: " ^ text)
  in
  expect_err "garbage" "cannot parse";
  expect_err "global g[4] = 0102" "2 bytes of data";
  expect_err "func f(0) frame=0\nL0:\n  [1] bad r1, r2, r3" "cannot parse instruction";
  expect_err "func f(0) frame=0\nL0:\n  [1] li #3, r1" "no terminator"

let test_asm_roundtrip_after_vrs () =
  (* The save format survives the optimizer's clones and guards. *)
  let w = Ogc_workloads.Workload.find "vortex" in
  let p = Ogc_workloads.Workload.compile w Ogc_workloads.Workload.Train in
  ignore (Ogc_core.Vrs.run p);
  let q = Asm.parse (Asm.to_string p) in
  Validate.program q;
  Alcotest.(check int64) "same behaviour"
    (Interp.run p).Interp.checksum (Interp.run q).Interp.checksum;
  Alcotest.(check string) "fixpoint" (Asm.to_string p) (Asm.to_string q)

let prop_asm_roundtrip_random =
  QCheck.Test.make ~name:"assembly round-trips random programs" ~count:150
    Gen_minic.arbitrary_program (fun src ->
      let p = Ogc_minic.Minic.compile src in
      let text = Asm.to_string p in
      let q = try Asm.parse text with Asm.Error m -> QCheck.Test.fail_reportf "parse: %s" m in
      Validate.program q;
      String.equal text (Asm.to_string q))

let () =
  Alcotest.run "ir"
    [
      ("bitset", [ Alcotest.test_case "operations" `Quick test_bitset ]);
      ( "cfg",
        [
          Alcotest.test_case "edges and rpo" `Quick test_cfg;
          Alcotest.test_case "dominators" `Quick test_dom;
          Alcotest.test_case "loops" `Quick test_loops;
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "use-def" `Quick test_usedef;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "structure" `Quick test_callgraph;
          Alcotest.test_case "mutual recursion" `Quick
            test_callgraph_mutual_recursion;
        ] );
      ( "validate",
        [
          Alcotest.test_case "dangling label" `Quick test_validate;
          Alcotest.test_case "duplicate iids" `Quick test_validate_duplicate_iids;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "memory" `Quick test_interp_memory;
          Alcotest.test_case "calls" `Quick test_interp_calls;
          Alcotest.test_case "oob fault" `Quick test_interp_fault_oob;
          Alcotest.test_case "step budget" `Quick test_interp_budget;
          Alcotest.test_case "bb counts" `Quick test_interp_bb_counts;
          Alcotest.test_case "events" `Quick test_interp_events;
          Alcotest.test_case "global layout" `Quick test_global_addresses;
        ] );
      ( "asm",
        [
          Alcotest.test_case "round-trip" `Quick test_asm_roundtrip_simple;
          Alcotest.test_case "iids preserved" `Quick test_asm_preserves_iids;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "round-trip after VRS" `Slow
            test_asm_roundtrip_after_vrs;
          QCheck_alcotest.to_alcotest prop_asm_roundtrip_random;
        ] );
    ]
