(** Operand widths.

    The paper's software operand-gating scheme re-encodes instructions with
    opcodes that specify one of four operand widths: byte, halfword, word and
    doubleword (the architecture is 64-bit).  Narrow values are always kept
    in two's complement, i.e. a width-[w] value occupies the low [w] bits of
    a register and is sign-extended to 64 bits. *)

type t = W8 | W16 | W32 | W64

val equal : t -> t -> bool
val compare : t -> t -> int

(** [bits w] is the number of bits of [w]: 8, 16, 32 or 64. *)
val bits : t -> int

(** [bytes w] is [bits w / 8]. *)
val bytes : t -> int

(** [of_bytes n] is the narrowest width holding [n] bytes.
    Raises [Invalid_argument] if [n < 1] or [n > 8]. *)
val of_bytes : int -> t

(** All widths, narrowest first. *)
val all : t list

(** [max a b] is the wider of the two widths. *)
val max : t -> t -> t

(** [min a b] is the narrower of the two widths. *)
val min : t -> t -> t

(** [min_value w] is the smallest signed value representable at width [w]. *)
val min_value : t -> int64

(** [max_value w] is the largest signed value representable at width [w]. *)
val max_value : t -> int64

(** [fits v w] is true when the signed value [v] is representable in [w]
    bits of two's complement. *)
val fits : int64 -> t -> bool

(** [needed v] is the narrowest width whose signed range contains [v]. *)
val needed : int64 -> t

(** [needed_range lo hi] is the narrowest width containing both bounds. *)
val needed_range : int64 -> int64 -> t

(** [needed_unsigned v] is the narrowest width [w] with
    [v] in [\[0, 2^(bits w) - 1\]]: the narrowest width from which [v] is
    recoverable by {e zero}-extension.  [W64] for negative [v]. *)
val needed_unsigned : int64 -> t

(** [truncate v w] keeps the low [bits w] bits of [v] and sign-extends the
    result back to 64 bits.  [truncate v W64 = v]. *)
val truncate : int64 -> t -> int64

(** [truncate_unsigned v w] keeps the low [bits w] bits of [v],
    zero-extended. *)
val truncate_unsigned : int64 -> t -> int64

val pp : Format.formatter -> t -> unit
val to_string : t -> string
