open Ogc_isa

type def_site = Entry | At of int

type def = { dreg : Reg.t; site : def_site }

type t = {
  defs : def array;
  defs_of_ins : (int, int list) Hashtbl.t;
  use_defs : (int * int, int list) Hashtbl.t;
      (* (use_iid, reg index) -> def indices *)
  def_uses : (int, (int * Reg.t) list) Hashtbl.t;
}

let compute (f : Prog.func) cfg =
  let nregs = 1 + Prog.max_reg_of_func f in
  (* 1. Enumerate definitions. *)
  let defs = ref [] and ndefs = ref 0 in
  let defs_of_ins = Hashtbl.create 256 in
  let add_def dreg site =
    let idx = !ndefs in
    defs := { dreg; site } :: !defs;
    incr ndefs;
    (match site with
    | At iid ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt defs_of_ins iid) in
      Hashtbl.replace defs_of_ins iid (idx :: prev)
    | Entry -> ());
    idx
  in
  let entry_def = Array.make nregs (-1) in
  List.iter
    (fun r -> entry_def.(Reg.to_int r) <- add_def r Entry)
    Reg.all;
  Prog.iter_ins f (fun _ ins ->
      List.iter (fun r -> ignore (add_def r (At ins.iid))) (Instr.defs ins.op));
  let defs = Array.of_list (List.rev !defs) in
  let nd = Array.length defs in
  (* Per-register masks over all defs of that register, for kill sets. *)
  let reg_mask = Array.init nregs (fun _ -> Bitset.create nd) in
  Array.iteri (fun i d -> Bitset.set reg_mask.(Reg.to_int d.dreg) i) defs;
  (* 2. Block-level gen/kill.  A block kills every def of each register
     it writes except its own last one, which it generates — so one pass
     finds the last def per register and the sets are assembled from the
     per-register masks word-wise, instead of touching every same-register
     def once per defining instruction. *)
  let n = Array.length f.blocks in
  let gen = Array.init n (fun _ -> Bitset.create nd) in
  let kill = Array.init n (fun _ -> Bitset.create nd) in
  let ins_defs iid = Option.value ~default:[] (Hashtbl.find_opt defs_of_ins iid) in
  let last_def = Array.make nregs (-1) in
  Array.iteri
    (fun bi (b : Prog.block) ->
      let regs = ref [] in
      Array.iter
        (fun (ins : Prog.ins) ->
          List.iter
            (fun di ->
              let r = Reg.to_int defs.(di).dreg in
              if last_def.(r) < 0 then regs := r :: !regs;
              last_def.(r) <- di)
            (ins_defs ins.iid))
        b.body;
      List.iter
        (fun r ->
          ignore (Bitset.union_into ~into:kill.(bi) reg_mask.(r));
          Bitset.clear kill.(bi) last_def.(r);
          Bitset.set gen.(bi) last_def.(r);
          last_def.(r) <- -1)
        !regs)
    f.blocks;
  (* 3. Iterate to fixpoint: in[b] = U out[p]; out[b] = gen + (in - kill).
     Out-sets start at their first Kleene approximation (gen, plus the
     entry pseudo-defs flowing through block 0) and every recomputation
     works in one scratch set, so the sweeps allocate nothing; a block
     whose in-set is unchanged is skipped outright (its out-set is a pure
     function of it).  Starting above bottom but below the fixpoint
     converges to the same least fixpoint as the from-empty iteration. *)
  let inb = Array.init n (fun _ -> Bitset.create nd) in
  let outb = Array.init n (fun _ -> Bitset.create nd) in
  (* Entry block starts with the entry pseudo-defs. *)
  let entry_bits = Bitset.create nd in
  Array.iter (fun di -> if di >= 0 then Bitset.set entry_bits di) entry_def;
  let scratch = Bitset.create nd in
  for bi = 0 to n - 1 do
    Bitset.reset scratch;
    if bi = 0 then ignore (Bitset.union_into ~into:scratch entry_bits);
    Bitset.copy_into ~into:inb.(bi) scratch;
    Bitset.diff_into ~into:scratch kill.(bi);
    ignore (Bitset.union_into ~into:scratch gen.(bi));
    Bitset.copy_into ~into:outb.(bi) scratch
  done;
  let rpo = Cfg.reverse_postorder cfg in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let bi = Label.to_int l in
        Bitset.reset scratch;
        if bi = 0 then ignore (Bitset.union_into ~into:scratch entry_bits);
        List.iter
          (fun p ->
            ignore (Bitset.union_into ~into:scratch outb.(Label.to_int p)))
          (Cfg.preds cfg l);
        if not (Bitset.equal scratch inb.(bi)) then begin
          Bitset.copy_into ~into:inb.(bi) scratch;
          Bitset.diff_into ~into:scratch kill.(bi);
          ignore (Bitset.union_into ~into:scratch gen.(bi));
          if not (Bitset.equal scratch outb.(bi)) then begin
            Bitset.copy_into ~into:outb.(bi) scratch;
            changed := true
          end
        end)
      rpo
  done;
  (* 4. Walk each block to record per-use reaching defs.  The reaching
     set is kept bucketed by register (ascending def index, matching the
     bitset enumeration order), so a use reads its defs off directly
     instead of filtering an enumeration of every live def; a definition
     of [r] collapses [r]'s bucket to itself, which is exactly the
     gen/kill update. *)
  let use_defs = Hashtbl.create 1024 in
  let def_uses_acc = Array.make nd [] in
  let cur_by_reg = Array.make nregs [] in
  let record_use use_iid r =
    let ds = cur_by_reg.(Reg.to_int r) in
    Hashtbl.replace use_defs (use_iid, Reg.to_int r) ds;
    List.iter
      (fun di -> def_uses_acc.(di) <- (use_iid, r) :: def_uses_acc.(di))
      ds
  in
  let bucket_rev = Array.make nregs [] in
  Array.iteri
    (fun bi (b : Prog.block) ->
      Array.fill bucket_rev 0 nregs [];
      Bitset.iter inb.(bi) (fun di ->
          let r = Reg.to_int defs.(di).dreg in
          bucket_rev.(r) <- di :: bucket_rev.(r));
      for r = 0 to nregs - 1 do
        cur_by_reg.(r) <- List.rev bucket_rev.(r)
      done;
      Array.iter
        (fun (ins : Prog.ins) ->
          List.iter (record_use ins.iid) (Instr.uses ins.op);
          List.iter
            (fun di -> cur_by_reg.(Reg.to_int defs.(di).dreg) <- [ di ])
            (ins_defs ins.iid))
        b.body;
      match b.term with
      | Prog.Branch { src; _ } -> record_use b.term_iid src
      | Prog.Return -> record_use b.term_iid Reg.ret
      | Prog.Jump _ -> ())
    f.blocks;
  let def_uses = Hashtbl.create 1024 in
  Array.iteri
    (fun di l -> if l <> [] then Hashtbl.replace def_uses di l)
    def_uses_acc;
  { defs; defs_of_ins; use_defs; def_uses }

let num_defs t = Array.length t.defs
let def t i = t.defs.(i)

let defs_of_ins t iid =
  Option.value ~default:[] (Hashtbl.find_opt t.defs_of_ins iid)

let reaching_uses t ~use_iid ~reg =
  Option.value ~default:[]
    (Hashtbl.find_opt t.use_defs (use_iid, Reg.to_int reg))

let uses_of_def t d =
  Option.value ~default:[] (Hashtbl.find_opt t.def_uses d)

let dependents t ~iid =
  let seen = Hashtbl.create 64 in
  let rec expand_def di =
    List.iter
      (fun (use_iid, _) ->
        if not (Hashtbl.mem seen use_iid) then begin
          Hashtbl.replace seen use_iid ();
          List.iter expand_def (defs_of_ins t use_iid)
        end)
      (uses_of_def t di)
  in
  List.iter expand_def (defs_of_ins t iid);
  seen
