lib/gating/policy.mli: Ogc_isa Width
