open Ogc_isa
open Ogc_ir
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span
module Pool = Ogc_exec.Pool

(* Pass telemetry: fixpoint effort, pass wall time and the width mix the
   re-encoder actually commits — the static face of the paper's Table 1.
   [iterations] counts worklist rounds (sweeps), [visits] counts block
   processings with a non-⊥ input. *)
let m_fixpoint_iters = Metrics.counter "ogc_vrp_fixpoint_iterations_total"
let m_fixpoint_visits = Metrics.counter "ogc_vrp_fixpoint_visits_total"
let m_runs = Metrics.counter "ogc_vrp_runs_total"
let m_pass_seconds = Metrics.histogram "ogc_vrp_pass_seconds"

let m_width_assign =
  List.map
    (fun w ->
      ( w,
        Metrics.counter "ogc_vrp_width_assignments_total"
          ~labels:[ ("width", string_of_int (Width.bits w)) ] ))
    [ Width.W8; Width.W16; Width.W32; Width.W64 ]

type assumption = {
  af : string;
  alabel : Label.t;
  areg : Reg.t;
  arange : Interval.t;
}

type config = {
  useful : bool;
  useful_through_arith : bool;
  widen_after : int;
  interproc_rounds : int;
  assumptions : assumption list;
}

(* [useful_through_arith] defaults to on: the paper's introductory example
   (a dependence chain feeding an AND mask computes only one byte) requires
   demand to flow through additions.  In this demand formulation it is
   sound — the low k bits of add/sub/mul/shift-left results depend only on
   the low k bits of their inputs, and every overflow-observing use
   (compare, branch, divide, right shift) demands full width — so the
   §2.2.5 overflow-hiding hazard cannot arise.  Setting it to [false]
   gives the paper-literal conservative variant (kept as an ablation). *)
let default_config =
  {
    useful = true;
    useful_through_arith = true;
    widen_after = 3;
    interproc_rounds = 2;
    assumptions = [];
  }

let conventional_config = { default_config with useful = false }

type engine = Dense | Naive
type fixpoint_stats = { visits : int; rounds : int }
type summary = { mutable s_args : Interval.t array; mutable s_ret : Interval.t }

(* Analysis facts are dense: one slot per program [iid].  Instruction ids
   are program-unique and below [Prog.next_iid], so lookups are a bounds
   check and an array read, and per-function parallel writers touch
   disjoint indices. *)
type result = {
  ranges : Interval.t option array;
  inputs : (Interval.t * Interval.t) option array;
  reqs : Width.t option array;
  widths : Width.t option array;
  summaries : (string, summary) Hashtbl.t;
  mutable stats : fixpoint_stats;
}

let get arr iid = if iid >= 0 && iid < Array.length arr then arr.(iid) else None

(* --- flow states: one interval per register ------------------------------ *)

(* Pre-allocation programs carry virtual registers above the architectural
   32, so the state size is per-function: [1 + Prog.max_reg_of_func f]. *)
let zero_i = Reg.to_int Reg.zero
let sp_i = Reg.to_int Reg.sp

let sp_range =
  Interval.v Interp.virtual_base
    (Int64.add Interp.virtual_base 0x1_0000_0000L)

let state_top nregs =
  let s = Array.make nregs Interval.top in
  s.(zero_i) <- Interval.const 0L;
  s

let state_equal a b =
  let nregs = Array.length a in
  let rec go i = i >= nregs || (Interval.equal a.(i) b.(i) && go (i + 1)) in
  go 0

(* Every state in the engine keeps [zero] pinned to the constant 0 (the
   constructors below establish it; transfers, refinements and widening
   never write it), so in-place joins can skip the slot. *)
let state_join_into dst src =
  for i = 0 to Array.length dst - 1 do
    if i <> zero_i then dst.(i) <- Interval.join dst.(i) src.(i)
  done

(* Directional threshold widening: an unstable bound jumps to the next
   width landmark, so compares at narrower operation widths can still
   refine the widened range (jumping straight to ±2^63 would make every
   W32 compare non-refinable). *)
let hi_landmarks = [ 127L; 32767L; 0x7FFF_FFFFL; Int64.max_int ]
let lo_landmarks = [ -128L; -32768L; Int64.neg 0x8000_0000L; Int64.min_int ]

let widen_hi n =
  List.find (fun l -> Int64.compare n l <= 0) hi_landmarks

let widen_lo n =
  List.find (fun l -> Int64.compare l n <= 0) lo_landmarks

(* [nxt] holds the join of [old] and the fresh input; rewrite it to the
   widened state in place. *)
let widen_into ~old nxt =
  for i = 0 to Array.length nxt - 1 do
    if i <> zero_i then begin
      let o = (old.(i) : Interval.t) and n = (nxt.(i) : Interval.t) in
      let lo =
        if Int64.compare n.Interval.lo o.Interval.lo < 0 then
          widen_lo n.Interval.lo
        else o.Interval.lo
      in
      let hi =
        if Int64.compare n.Interval.hi o.Interval.hi > 0 then
          widen_hi n.Interval.hi
        else o.Interval.hi
      in
      if
        not (Int64.equal lo n.Interval.lo && Int64.equal hi n.Interval.hi)
      then nxt.(i) <- Interval.v lo hi
    end
  done

(* --- per-function analysis ------------------------------------------------ *)

type fctx = {
  gaddr : (string, int64) Hashtbl.t;
  (* Return summary visible for a callee at this point of the schedule. *)
  ret_of : string -> Interval.t;
  (* This function's own argument-register ranges (length = arity). *)
  args_of : Interval.t array;
  (* Functions by name (callee arity lookup at [Call] transfers). *)
  func_of : (string, Prog.func) Hashtbl.t;
  config : config;
  (* When collecting: join actual argument ranges into callee accumulators. *)
  arg_acc : (string, Interval.t array) Hashtbl.t option;
  (* When recording: fill result tables. *)
  record : result option;
}

let operand_range state = function
  | Instr.Reg r -> state.(Reg.to_int r)
  | Instr.Imm v -> Interval.const v

let set state r v = if Reg.to_int r <> zero_i then state.(Reg.to_int r) <- v

(* Top-level (closure-free) recording helper for the transfer hot loop. *)
let record_def_at record iid rng a b =
  match record with
  | Some res ->
    res.ranges.(iid) <- Some rng;
    res.inputs.(iid) <- Some (a, b)
  | None -> ()

(* Transfer one instruction over a mutable state copy. *)
let transfer ctx state (ins : Prog.ins) =
  let record_def rng a b = record_def_at ctx.record ins.iid rng a b in
  match ins.op with
  | Instr.Alu { op; width; src1; src2; dst } ->
    let a = state.(Reg.to_int src1) and b = operand_range state src2 in
    let r = Interval.forward_alu op width a b in
    record_def r a b;
    set state dst r
  | Instr.Cmp { op; width; src1; src2; dst } ->
    let a = state.(Reg.to_int src1) and b = operand_range state src2 in
    let r = Interval.forward_cmp_op op width a b in
    record_def r a b;
    set state dst r
  | Instr.Cmov { width; test; src; dst; _ } ->
    let t = state.(Reg.to_int test) and s = operand_range state src in
    let r = Interval.forward_cmov width ~old:state.(Reg.to_int dst) ~src:s in
    record_def r t s;
    set state dst r
  | Instr.Msk { width; src; dst } ->
    let a = state.(Reg.to_int src) in
    let r = Interval.forward_msk width a in
    record_def r a (Interval.const 0L);
    set state dst r
  | Instr.Sext { width; src; dst } ->
    let a = state.(Reg.to_int src) in
    let r = Interval.forward_sext width a in
    record_def r a (Interval.const 0L);
    set state dst r
  | Instr.Li { dst; imm } ->
    let r = Interval.const imm in
    record_def r r r;
    set state dst r
  | Instr.La { dst; symbol } ->
    let r =
      match Hashtbl.find_opt ctx.gaddr symbol with
      | Some a -> Interval.const a
      | None -> sp_range
    in
    record_def r r r;
    set state dst r
  | Instr.Load { width; signed; base; dst; _ } ->
    let a = state.(Reg.to_int base) in
    let r = Interval.forward_load width ~signed in
    record_def r a (Interval.const 0L);
    set state dst r
  | Instr.Store { base; src; _ } ->
    let a = state.(Reg.to_int base) and s = state.(Reg.to_int src) in
    record_def Interval.top a s
  | Instr.Call { callee } ->
    (* Collect actual argument ranges for interprocedural propagation. *)
    (match (ctx.arg_acc, Hashtbl.find_opt ctx.func_of callee) with
    | Some acc, Some cf ->
      let cur =
        match Hashtbl.find_opt acc callee with
        | Some a -> a
        | None ->
          let a =
            Array.init cf.arity (fun i -> state.(Reg.to_int (Reg.arg i)))
          in
          Hashtbl.replace acc callee a;
          a
      in
      Array.iteri
        (fun i r -> cur.(i) <- Interval.join r state.(Reg.to_int (Reg.arg i)))
        cur
    | _ -> ());
    let ret_range = ctx.ret_of callee in
    List.iter (fun r -> set state r Interval.top) Reg.caller_saved;
    set state Reg.ret ret_range;
    record_def ret_range Interval.top Interval.top
  | Instr.Emit { src } ->
    record_def Interval.top state.(Reg.to_int src) (Interval.const 0L)

(* Refinements carried by a CFG edge leaving a conditional branch. *)
let edge_refinements (b : Prog.block) ~taken =
  match b.term with
  | Prog.Jump _ | Prog.Return -> []
  | Prog.Branch { cond; src; _ } ->
    (* Locate the last definition of [src] in the block body; when it is a
       compare whose operands are not redefined afterwards, the compare
       operands can be refined too (paper §2.2.4). *)
    let body = b.body in
    let n = Array.length body in
    let defines r (ins : Prog.ins) = List.exists (Reg.equal r) (Instr.defs ins.op) in
    let rec last_def r i =
      if i < 0 then None
      else if defines r body.(i) then Some i
      else last_def r (i - 1)
    in
    let cmp_refine =
      match last_def src (n - 1) with
      | None -> []
      | Some i -> (
        match body.(i).op with
        | Instr.Cmp { op; width; src1; src2; dst } ->
          (* Refinement reads the operand ranges from the block's
             out-state (each side's new range is computed against the
             other's), so an operand participates only while its exit
             range is still its range at the compare: not redefined
             between the compare and the exit — including by the compare
             itself, whose [dst] aliases an operand both in the [x == k]
             guards VRS emits ([cmpeq x, r27, r27]) and routinely after
             register allocation, where the compare result reuses an
             operand's register.  A clobbered operand can still provide
             {e context} for refining the other side when it was loaded
             as a constant below the compare ([li #k] feeds most bound
             checks): the constant is carried as an immediate. *)
          let redefined r =
            let rec go j =
              j < n && (defines r body.(j) || go (j + 1))
            in
            Reg.equal dst r || go (i + 1)
          in
          let rec const_below r j depth =
            if depth > 4 then None
            else
              match last_def r (j - 1) with
              | None -> None
              | Some k -> (
                match body.(k).op with
                | Instr.Li { imm; _ } -> Some imm
                | Instr.Alu
                    { op = Instr.Or; src1 = m; src2 = Instr.Imm 0L; _ } ->
                  const_below m k (depth + 1)
                | _ -> None)
          in
          let context r =
            if not (redefined r) then Some (Instr.Reg r)
            else
              Option.map (fun c -> Instr.Imm c) (const_below r i 0)
          in
          let lhs_ctx = context src1 in
          let rhs_ctx =
            match src2 with Instr.Imm _ -> Some src2 | Instr.Reg r -> context r
          in
          let ref1 = (not (redefined src1)) && rhs_ctx <> None in
          let ref2 =
            (match src2 with
            | Instr.Reg r -> not (redefined r)
            | Instr.Imm _ -> false)
            && lhs_ctx <> None
          in
          if ref1 || ref2 then
            let lhs_read = Option.value lhs_ctx ~default:(Instr.Reg src1) in
            let rhs_read = Option.value rhs_ctx ~default:src2 in
            [ (op, width, lhs_read, rhs_read, ref1, ref2) ]
          else []
        | _ -> [])
    in
    [ `Cond (cond, src, taken) ]
    @ List.map (fun c -> `Cmp (c, cond, src, taken)) cmp_refine

(* Apply edge refinements to a state copy; [false] means the edge is
   infeasible. *)
let apply_refinements state refs =
  let infeasible = ref false in
  List.iter
    (fun r ->
      match r with
      | `Cond (cond, src, taken) -> (
        let i = Reg.to_int src in
        match Interval.refine_cond cond state.(i) ~taken with
        | Some rng -> if i <> zero_i then state.(i) <- rng
        | None -> infeasible := true)
      | `Cmp ((op, width, lhs_op, rhs_op, ref1, ref2), cond, src, taken) -> (
        (* The branch tests the compare result against zero; determine
           whether the compare held on this edge. *)
        match Interval.refine_cond cond state.(Reg.to_int src) ~taken with
        | None -> infeasible := true
        | Some rng -> (
          match Interval.is_const rng with
          | Some c ->
            let holds = not (Int64.equal c 0L) in
            let lhs = operand_range state lhs_op in
            let rhs = operand_range state rhs_op in
            (match lhs_op with
            | Instr.Reg r1 when ref1 -> (
              match Interval.refine_cmp_lhs op width ~lhs ~rhs ~holds with
              | Some l -> if Reg.to_int r1 <> zero_i then state.(Reg.to_int r1) <- l
              | None -> infeasible := true)
            | Instr.Reg _ | Instr.Imm _ -> ());
            (match rhs_op with
            | Instr.Reg r2 when ref2 -> (
              match Interval.refine_cmp_rhs op width ~lhs ~rhs ~holds with
              | Some rr -> if Reg.to_int r2 <> zero_i then state.(Reg.to_int r2) <- rr
              | None -> infeasible := true)
            | Instr.Reg _ | Instr.Imm _ -> ())
          | None -> ())))
    refs;
  not !infeasible

(* --- per-function plan ----------------------------------------------------- *)

(* Everything about a function's control flow that the fixpoint needs but
   that never changes across interprocedural rounds: the CFG, the reverse
   postorder and its inverse (the worklist priority), predecessor edges
   with their refinements already extracted from the branch/compare
   pattern (the old engine re-derived them on every input recomputation
   of every sweep), deduplicated successors for worklist pushes, block
   assumptions, and whether the CFG has any cycle at all.  Plans are
   immutable and shared across parallel tasks. *)
type edge = {
  e_pred : int;
  e_apply : Interval.t array -> bool;  (* refine in place; false = infeasible *)
}

type plan = {
  pf : Prog.func;
  nb : int;
  pnregs : int;  (* state size: 1 + the function's highest register index *)
  rpo : int array;  (* worklist priority -> block index *)
  prio : int array;  (* block index -> worklist priority *)
  pedges : edge array array;  (* per block, in [Cfg.preds] order *)
  psuccs : int array array;  (* per block, deduplicated *)
  passume : assumption list array;
  cyclic : bool;
  pcfg : Cfg.t;
}

let make_plan config (f : Prog.func) =
  let cfg = Cfg.of_func f in
  let nb = Array.length f.blocks in
  let rpo = Array.of_list (List.map Label.to_int (Cfg.reverse_postorder cfg)) in
  let prio = Array.make (max nb 1) 0 in
  Array.iteri (fun pos bi -> prio.(bi) <- pos) rpo;
  let pedges =
    Array.init nb (fun bi ->
        let l = Label.of_int bi in
        Cfg.preds cfg l
        |> List.map (fun p ->
               let pi = Label.to_int p in
               let pb = f.blocks.(pi) in
               let taken =
                 match pb.term with
                 | Prog.Branch { if_true; _ } when Label.equal if_true l -> true
                 | Prog.Branch _ | Prog.Jump _ | Prog.Return -> false
               in
               (* A branch with identical targets contributes both edges;
                  using [taken] for the true side is sound because the
                  join of the two refinements over-approximates either. *)
               let refs = edge_refinements pb ~taken in
               { e_pred = pi; e_apply = (fun s -> apply_refinements s refs) })
        |> Array.of_list)
  in
  let psuccs =
    Array.init nb (fun bi ->
        Cfg.succs cfg (Label.of_int bi)
        |> List.map Label.to_int
        |> List.sort_uniq Int.compare
        |> Array.of_list)
  in
  let passume =
    Array.init nb (fun bi ->
        List.filter
          (fun a ->
            String.equal a.af f.fname && Label.equal a.alabel (Label.of_int bi))
          config.assumptions)
  in
  let scc = Scc.of_cfg cfg in
  { pf = f; nb; pnregs = 1 + Prog.max_reg_of_func f; rpo; prio; pedges;
    psuccs; passume; cyclic = Scc.has_cycle scc; pcfg = cfg }

(* Minimal binary min-heap over worklist priorities. *)
module Heap = struct
  type t = { mutable a : int array; mutable n : int }

  let create cap = { a = Array.make (max cap 1) 0; n = 0 }
  let is_empty h = h.n = 0

  let push h x =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) 0 in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- x;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      h.a.(p) > h.a.(!i)
    do
      let p = (!i - 1) / 2 in
      let t = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- t;
      i := p
    done

  let pop h =
    let r = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 and continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and rg = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.n && h.a.(l) < h.a.(!s) then s := l;
      if rg < h.n && h.a.(rg) < h.a.(!s) then s := rg;
      if !s = !i then continue := false
      else begin
        let t = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- t;
        i := !s
      end
    done;
    r
end

(* Analyze one function to a fixpoint; returns the join of the return-value
   ranges over all return sites, plus (visits, rounds) effort counters.

   Flow states live in preallocated per-block buffers ([nb] × [nregs]
   interval arrays); block processing blits and transfers in place, so the
   steady state allocates nothing per step.

   The [Dense] engine is a priority worklist with a round barrier, built
   to be {e sweep-equivalent} to the [Naive] reference (one full
   reverse-postorder pass per round): within a round pops ascend in
   priority (= RPO position), a changed block schedules forward successors
   into the current round and back-edge successors into the next, and the
   widening trigger compares rounds since the block first left ⊥ — exactly
   the visit count the naive engine accumulates, since it revisits every
   reached block once per sweep.  Blocks whose inputs did not change are
   simply never scheduled; processing them would be the identity (widening
   included: widening an unchanged join keeps both bounds).  Reverse
   postorder is a topological order of the SCC condensation (see {!Scc}),
   so acyclic regions converge in a single visit and a fully acyclic
   function finishes in one round with no narrowing needed. *)
let analyze_func ctx plan ~engine : Interval.t * int * int =
  let f = plan.pf in
  let nb = plan.nb in
  let nregs = plan.pnregs in
  let ins_s = Array.init nb (fun _ -> state_top nregs) in
  let out_s = Array.init nb (fun _ -> state_top nregs) in
  (* [reached.(bi)] — the block's in-state has left ⊥. *)
  let reached = Array.make nb false in
  let fresh = state_top nregs
  and tmp = state_top nregs
  and nxt = state_top nregs in
  let entry =
    let s = state_top nregs in
    s.(sp_i) <- sp_range;
    Array.iteri (fun i r -> s.(Reg.to_int (Reg.arg i)) <- r) ctx.args_of;
    s
  in
  (* Fresh input state of block [bi], into [fresh]: join of refined
     predecessor outputs; [false] (⊥) when no predecessor is reached. *)
  let compute_in bi =
    let started = ref false in
    if bi = 0 then begin
      Array.blit entry 0 fresh 0 nregs;
      started := true
    end;
    let edges = plan.pedges.(bi) in
    for k = 0 to Array.length edges - 1 do
      let e = edges.(k) in
      if reached.(e.e_pred) then begin
        Array.blit out_s.(e.e_pred) 0 tmp 0 nregs;
        if e.e_apply tmp then
          if !started then state_join_into fresh tmp
          else begin
            Array.blit tmp 0 fresh 0 nregs;
            started := true
          end
      end
    done;
    !started
    && begin
         List.iter
           (fun a ->
             let i = Reg.to_int a.areg in
             if i <> zero_i then
               match Interval.meet fresh.(i) a.arange with
               | Some m -> fresh.(i) <- m
               | None -> fresh.(i) <- a.arange)
           plan.passume.(bi);
         true
       end
  in
  let transfer_block bi state =
    let body = f.blocks.(bi).body in
    for k = 0 to Array.length body - 1 do
      transfer ctx state body.(k)
    done
  in
  (* One block processing: recompute the input, join/widen against the
     previous in-state, and on change re-run the block transfer. *)
  let process ~widen bi =
    if not (compute_in bi) then `Bot
    else begin
      let cur = ins_s.(bi) in
      let next =
        if reached.(bi) then begin
          for i = 0 to nregs - 1 do
            nxt.(i) <-
              (if i = zero_i then cur.(i) else Interval.join cur.(i) fresh.(i))
          done;
          if widen then widen_into ~old:cur nxt;
          nxt
        end
        else fresh
      in
      if (not reached.(bi)) || not (state_equal next cur) then begin
        Array.blit next 0 cur 0 nregs;
        reached.(bi) <- true;
        Array.blit cur 0 out_s.(bi) 0 nregs;
        transfer_block bi out_s.(bi);
        `Changed
      end
      else `Unchanged
    end
  in
  let visits = ref 0 and rounds = ref 0 in
  let wa = ctx.config.widen_after in
  (match engine with
  | Naive ->
    (* Reference engine: full reverse-postorder sweeps until no in-state
       changes; widening after [widen_after] visits of a reached block. *)
    let vcount = Array.make nb 0 in
    let changed = ref true in
    while !changed do
      incr rounds;
      changed := false;
      Array.iter
        (fun bi ->
          match process ~widen:(vcount.(bi) > wa) bi with
          | `Bot -> ()
          | `Unchanged ->
            vcount.(bi) <- vcount.(bi) + 1;
            incr visits
          | `Changed ->
            vcount.(bi) <- vcount.(bi) + 1;
            incr visits;
            changed := true)
        plan.rpo
    done
  | Dense ->
    let heap = Heap.create nb in
    let in_heap = Array.make nb false in
    let next_flag = Array.make nb false in
    let next_round = ref [] in
    (* Round of a block's first non-⊥ processing; -1 until reached. *)
    let first_round = Array.make nb (-1) in
    for p = 0 to nb - 1 do
      Heap.push heap p;
      in_heap.(plan.rpo.(p)) <- true
    done;
    while not (Heap.is_empty heap) do
      incr rounds;
      while not (Heap.is_empty heap) do
        let p = Heap.pop heap in
        let bi = plan.rpo.(p) in
        in_heap.(bi) <- false;
        let widen =
          first_round.(bi) >= 0 && !rounds - first_round.(bi) > wa
        in
        match process ~widen bi with
        | `Bot -> ()
        | `Unchanged ->
          incr visits;
          if first_round.(bi) < 0 then first_round.(bi) <- !rounds
        | `Changed ->
          incr visits;
          if first_round.(bi) < 0 then first_round.(bi) <- !rounds;
          let succs = plan.psuccs.(bi) in
          for k = 0 to Array.length succs - 1 do
            let s = succs.(k) in
            let sp = plan.prio.(s) in
            if sp > p then begin
              if not in_heap.(s) then begin
                Heap.push heap sp;
                in_heap.(s) <- true
              end
            end
            else if not next_flag.(s) then begin
              next_flag.(s) <- true;
              next_round := s :: !next_round
            end
          done
      done;
      List.iter
        (fun s ->
          next_flag.(s) <- false;
          if not in_heap.(s) then begin
            Heap.push heap plan.prio.(s);
            in_heap.(s) <- true
          end)
        !next_round;
      next_round := []
    done);
  (* Two descending (narrowing) sweeps; each recomputed state remains a
     sound over-approximation because it is derived from sound inputs.
     An acyclic CFG never widened and is already at the exact fixpoint,
     so the sweeps are skipped (they would recompute identical states).
     A block whose recomputed input turns infeasible keeps its previous
     (sound) states. *)
  if plan.cyclic then
    for _ = 1 to 2 do
      Array.iter
        (fun bi ->
          if compute_in bi then begin
            Array.blit fresh 0 ins_s.(bi) 0 nregs;
            Array.blit fresh 0 out_s.(bi) 0 nregs;
            transfer_block bi out_s.(bi)
          end)
        plan.rpo
    done;
  (* Final sweep: collect the return range, and re-run transfers where
     they still have something to say.  Blocks never reached (⊥) are
     processed conservatively from ⊤ so that dead code keeps sound
     (wide) widths — and so their call sites contribute the same ⊤
     argument joins in every engine and round.  For reached blocks,
     [out_s] already holds the transfer of the stabilized input, so the
     re-run is needed only when recording (the record callback must see
     the stabilized states); without recording it would recompute
     identical states and re-join identical call arguments — a no-op. *)
  let recording = ctx.record <> None in
  let ret = ref None in
  Array.iteri
    (fun bi (b : Prog.block) ->
      let ret_range =
        if reached.(bi) then
          if recording then begin
            Array.blit ins_s.(bi) 0 tmp 0 nregs;
            transfer_block bi tmp;
            tmp.(Reg.to_int Reg.ret)
          end
          else out_s.(bi).(Reg.to_int Reg.ret)
        else begin
          Array.fill tmp 0 nregs Interval.top;
          tmp.(zero_i) <- Interval.const 0L;
          transfer_block bi tmp;
          tmp.(Reg.to_int Reg.ret)
        end
      in
      match b.term with
      | Prog.Return when reached.(bi) ->
        ret :=
          Some
            (match !ret with
            | None -> ret_range
            | Some acc -> Interval.join acc ret_range)
      | Prog.Return | Prog.Jump _ | Prog.Branch _ -> ())
    f.blocks;
  (Option.value ~default:Interval.top !ret, !visits, !rounds)

(* --- useful-width (demand) analysis -------------------------------------- *)

(* [ops.(iid)] is the body instruction with that id, [None] for
   terminators (whose uses always demand the full value). *)
let sound_width_of_def res (ops : Instr.t option array) (ud : Usedef.t) di =
  let d = Usedef.def ud di in
  match d.Usedef.site with
  | Usedef.Entry -> Width.W64
  | Usedef.At iid -> (
    (* Calls define every caller-saved register; only the return value's
       range is known.  All other defs have a single destination whose
       range was recorded under the instruction id. *)
    let opv = if iid < Array.length ops then ops.(iid) else None in
    let is_call = match opv with Some (Instr.Call _) -> true | _ -> false in
    if is_call && not (Reg.equal d.Usedef.dreg Reg.ret) then Width.W64
    else
      (* A re-encoded instruction delivers the low [w] bits of its
         result and extends them to the full register; the def's value
         is intact only when that extension recovers it.  Every narrow
         op sign-extends except [Msk], which zero-extends, so a [Msk]
         def is bounded by the unsigned width of its range: narrowing
         [msk64 r, r] of a negative value to its (signed) 16-bit width
         would flip it positive. *)
      let width_of =
        match opv with
        | Some (Instr.Msk _) -> Interval.width_unsigned
        | Some _ | None -> Interval.width
      in
      match get res.ranges iid with
      | Some rng -> width_of rng
      | None -> Width.W64)

let demand config ~req_out ~(op : Instr.t) ~(r : Reg.t) =
  (* Width of register [r]'s low bits that instruction [op] can expose to
     its consumers; [req_out] is the useful width of [op]'s own output. *)
  let roles = ref [] in
  let add w = roles := w :: !roles in
  (match op with
  | Instr.Alu { op = aop; src1; src2; _ } ->
    let is1 = Reg.equal r src1 in
    let is2 = match src2 with Instr.Reg x -> Reg.equal r x | Instr.Imm _ -> false in
    (match aop with
    | Instr.And | Instr.Or | Instr.Xor | Instr.Bic ->
      if is1 || is2 then add req_out
    | Instr.Add | Instr.Sub | Instr.Mul ->
      if is1 || is2 then
        add (if config.useful_through_arith then req_out else Width.W64)
    | Instr.Sll ->
      if is1 then
        add (if config.useful_through_arith then req_out else Width.W64);
      if is2 then add Width.W64
    | Instr.Div | Instr.Rem | Instr.Srl | Instr.Sra ->
      if is1 || is2 then add Width.W64)
  | Instr.Cmp { src1; src2; _ } ->
    let is2 = match src2 with Instr.Reg x -> Reg.equal r x | Instr.Imm _ -> false in
    if Reg.equal r src1 || is2 then add Width.W64
  | Instr.Cmov { test; src; dst; _ } ->
    if Reg.equal r test then add Width.W64;
    (match src with
    | Instr.Reg x when Reg.equal r x -> add req_out
    | Instr.Reg _ | Instr.Imm _ -> ());
    if Reg.equal r dst then add req_out
  | Instr.Msk { width; src; _ } ->
    if Reg.equal r src then add (Width.min width req_out)
  | Instr.Sext { width; src; _ } ->
    if Reg.equal r src then add (Width.min width req_out)
  | Instr.Load { base; _ } -> if Reg.equal r base then add Width.W64
  | Instr.Store { width; base; src; _ } ->
    if Reg.equal r base then add Width.W64;
    if Reg.equal r src then add width
  | Instr.Li _ | Instr.La _ -> ()
  | Instr.Call _ -> add Width.W64
  | Instr.Emit _ -> add Width.W64);
  match !roles with [] -> Width.W64 | w :: ws -> List.fold_left Width.max w ws

let useful_pass config res (f : Prog.func) cfg ops =
  let ud = Usedef.compute f cfg in
  let nd = Usedef.num_defs ud in
  let op_of iid = if iid < Array.length ops then ops.(iid) else None in
  let req = Array.init nd (fun di -> sound_width_of_def res ops ud di) in
  (* Useful width of the output of instruction [iid]: max over the reqs of
     the defs it makes (a Call makes many; they are all W64 anyway). *)
  let req_out_of iid =
    match Usedef.defs_of_ins ud iid with
    | [] -> Width.W64
    | ds -> List.fold_left (fun acc d -> Width.max acc req.(d)) Width.W8 ds
  in
  if config.useful then begin
    (* Demand propagation to the greatest fixpoint below the sound
       initialization.  [req] only ever shrinks, so a change-driven
       worklist converges to the same unique fixpoint the full sweeps
       did, touching each def once plus once per upstream shrink instead
       of the whole function per sweep.  [req_out] caches each consumer
       instruction's output demand (the sweeps refolded it per use per
       sweep); when a def shrinks, the cache entry for its instruction is
       refreshed and — only if it moved — the defs feeding that
       instruction are requeued. *)
    let req_out : (int, Width.t) Hashtbl.t = Hashtbl.create 64 in
    let req_out_cached iid =
      match Hashtbl.find_opt req_out iid with
      | Some w -> w
      | None ->
        let w = req_out_of iid in
        Hashtbl.replace req_out iid w;
        w
    in
    let in_queue = Array.make nd false in
    let queue = Queue.create () in
    let enqueue di =
      if not in_queue.(di) then begin
        in_queue.(di) <- true;
        Queue.add di queue
      end
    in
    let refresh_site di =
      match (Usedef.def ud di).Usedef.site with
      | Usedef.Entry -> ()
      | Usedef.At iid -> (
        match Hashtbl.find_opt req_out iid with
        | None -> () (* never consulted: next lookup recomputes *)
        | Some old ->
          let nw = req_out_of iid in
          if not (Width.equal old nw) then begin
            Hashtbl.replace req_out iid nw;
            match op_of iid with
            | None -> ()
            | Some op ->
              List.iter
                (fun r ->
                  List.iter enqueue
                    (Usedef.reaching_uses ud ~use_iid:iid ~reg:r))
                (Instr.uses op)
          end)
    in
    for di = 0 to nd - 1 do
      enqueue di
    done;
    while not (Queue.is_empty queue) do
      let di = Queue.pop queue in
      in_queue.(di) <- false;
      let d = Usedef.def ud di in
      let uses = Usedef.uses_of_def ud di in
      let dem =
        List.fold_left
          (fun acc (use_iid, r) ->
            match op_of use_iid with
            | Some op ->
              Width.max acc (demand config ~req_out:(req_out_cached use_iid) ~op ~r)
            | None -> Width.W64 (* terminator use: full value *))
          Width.W8 uses
      in
      (* Dead defs (no uses) demand nothing — except the stack pointer
         which is live across the function boundary (the caller observes
         its full value).  The return register needs no such pin: every
         [Return] records a terminator use of it, so exactly the defs
         that reach the caller demand the full width — pinning every def
         of r0 would defeat narrowing now that the allocator hands it
         out as an ordinary color. *)
      let dem =
        if Reg.equal d.Usedef.dreg Reg.sp then Width.W64
        else if uses = [] then Width.W8
        else dem
      in
      let nw = Width.min req.(di) dem in
      if not (Width.equal nw req.(di)) then begin
        req.(di) <- nw;
        refresh_site di
      end
    done
  end;
  (* Publish per-instruction useful widths. *)
  Prog.iter_ins f (fun _ ins ->
      match Usedef.defs_of_ins ud ins.iid with
      | [] -> ()
      | ds ->
        let w = List.fold_left (fun acc d -> Width.max acc req.(d)) Width.W8 ds in
        res.reqs.(ins.iid) <- Some w)

(* --- width assignment ------------------------------------------------------ *)

let assign_widths res (f : Prog.func) =
  Prog.iter_ins f (fun _ ins ->
      let rng iid = get res.ranges iid in
      let req iid =
        match get res.reqs iid with Some w -> w | None -> Width.W64
      in
      let sound iid =
        match rng iid with Some r -> Interval.width r | None -> Width.W64
      in
      let ins_rngs iid =
        match get res.inputs iid with
        | Some (a, b) -> (Interval.width a, Interval.width b)
        | None -> (Width.W64, Width.W64)
      in
      let w =
        match ins.op with
        | Instr.Alu { op; width = orig; _ } -> (
          match op with
          | Instr.And | Instr.Or | Instr.Xor | Instr.Bic
          | Instr.Add | Instr.Sub | Instr.Mul ->
            (* Low-bit determined: the useful width of the output is
               enough; never widen beyond the encoded width. *)
            Some (Width.min orig (Width.min (req ins.iid) (sound ins.iid)))
          | Instr.Sll ->
            let _, wb = ins_rngs ins.iid in
            Some (Width.min orig
                    (Width.max wb (Width.min (req ins.iid) (sound ins.iid))))
          | Instr.Div | Instr.Rem | Instr.Srl | Instr.Sra ->
            let wa, wb = ins_rngs ins.iid in
            Some (Width.min orig (Width.max (Width.max wa wb) (sound ins.iid))))
        | Instr.Cmp { width = orig; _ } ->
          let wa, wb = ins_rngs ins.iid in
          Some (Width.min orig (Width.max wa wb))
        | Instr.Cmov { width = orig; _ } ->
          Some (Width.min orig (Width.min (req ins.iid) (sound ins.iid)))
        | Instr.Msk { width = orig; _ } | Instr.Sext { width = orig; _ } ->
          Some (Width.min orig (req ins.iid))
        | Instr.Li _ | Instr.La _ ->
          Some (Width.min (req ins.iid) (sound ins.iid))
        | Instr.Load { width; _ } | Instr.Store { width; _ } -> Some width
        | Instr.Call _ | Instr.Emit _ -> None
      in
      match w with
      | Some w -> res.widths.(ins.iid) <- Some w
      | None -> ())

(* --- function-granular result cache ---------------------------------------- *)

(* The final recorded pass is, per function, a pure function of the
   function's code and its analysis inputs: the argument ranges, each
   callee's visible return range, the addresses [La] resolves, the
   config (with its per-function assumptions) and the engine.
   [Fn_cache] memoizes that pass across whole-program runs, keyed by a
   digest of exactly those inputs.  Recorded facts are stored
   positionally (the [Prog.iter_ins] order), not by instruction id, so
   a fragment survives the program-global iid renumbering that editing
   an unrelated function (or a re-parse) causes.  The interprocedural
   summary rounds always run — they are whole-program by nature and
   their result feeds the digests. *)
module Fn_cache = struct
  let m_hit =
    Metrics.counter "ogc_vrp_fn_cache_total" ~labels:[ ("outcome", "hit") ]

  let m_run =
    Metrics.counter "ogc_vrp_fn_cache_total" ~labels:[ ("outcome", "run") ]

  type fragment = {
    fr_ranges : Interval.t option array;  (* per body-instruction position *)
    fr_inputs : (Interval.t * Interval.t) option array;
    fr_reqs : Width.t option array;
    fr_widths : Width.t option array;
    fr_ret : Interval.t;
    (* Effort counters replayed into [fixpoint_stats], keeping the
       result — introspection included — identical to a live run. *)
    fr_visits : int;
    fr_rounds : int;
  }

  type t = {
    m : Mutex.t;
    capacity : int;
    entries : (string, fragment) Hashtbl.t;
    order : string Queue.t;  (* insertion order: FIFO eviction *)
    mutable hits : int;
    mutable runs : int;
  }

  let create ?(capacity = 4096) () =
    {
      m = Mutex.create ();
      capacity = max capacity 1;
      entries = Hashtbl.create 256;
      order = Queue.create ();
      hits = 0;
      runs = 0;
    }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | Some fr ->
          t.hits <- t.hits + 1;
          Metrics.incr m_hit;
          Some fr
        | None ->
          t.runs <- t.runs + 1;
          Metrics.incr m_run;
          None)

  let install t key fr =
    locked t (fun () ->
        if not (Hashtbl.mem t.entries key) then begin
          while Hashtbl.length t.entries >= t.capacity do
            match Queue.take_opt t.order with
            | Some old -> Hashtbl.remove t.entries old
            | None -> Hashtbl.reset t.entries
          done;
          Hashtbl.replace t.entries key fr;
          Queue.add key t.order
        end)

  (* (hits, runs): fragment replays vs. live final passes since create. *)
  let stats t = locked t (fun () -> (t.hits, t.runs))
end

(* Digest of everything the function's recorded pass can observe.  The
   body is rendered through the (iid-free) assembly printer, so two
   programs whose instruction ids differ but whose code and analysis
   inputs agree share a digest. *)
let func_digest ~config ~engine ~gaddr ~args ~ret_of ~callees
    (f : Prog.func) =
  let b = Buffer.create 1024 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\x00'
  in
  let interval (i : Interval.t) =
    Printf.sprintf "%Ld:%Ld" i.Interval.lo i.Interval.hi
  in
  add (match engine with Dense -> "dense" | Naive -> "naive");
  add
    (Printf.sprintf "%b %b %d %d" config.useful config.useful_through_arith
       config.widen_after config.interproc_rounds);
  List.iter
    (fun a ->
      if String.equal a.af f.fname then
        add
          (Printf.sprintf "as %d %d %s" (Label.to_int a.alabel)
             (Reg.to_int a.areg) (interval a.arange)))
    config.assumptions;
  add f.fname;
  add (string_of_int f.arity);
  add (string_of_int f.frame_size);
  Array.iter (fun r -> add (interval r)) args;
  Array.iter
    (fun (blk : Prog.block) ->
      add (string_of_int (Label.to_int blk.label));
      Array.iter
        (fun (ins : Prog.ins) ->
          add (Instr.to_string ins.op);
          match ins.op with
          | Instr.La { symbol; _ } ->
            add
              (match Hashtbl.find_opt gaddr symbol with
              | Some a -> Printf.sprintf "la %Ld" a
              | None -> "la ?")
          | _ -> ())
        blk.body;
      add (Asm.terminator_to_string blk.term))
    f.blocks;
  List.iter
    (fun c -> add (Printf.sprintf "c %s %s" c (interval (ret_of c))))
    callees;
  Digest.to_hex (Digest.string (Buffer.contents b))

let extract_fragment res (f : Prog.func) ~ret ~visits ~rounds =
  let n = ref 0 in
  Prog.iter_ins f (fun _ _ -> incr n);
  let fr =
    {
      Fn_cache.fr_ranges = Array.make !n None;
      fr_inputs = Array.make !n None;
      fr_reqs = Array.make !n None;
      fr_widths = Array.make !n None;
      fr_ret = ret;
      fr_visits = visits;
      fr_rounds = rounds;
    }
  in
  let pos = ref 0 in
  Prog.iter_ins f (fun _ ins ->
      fr.Fn_cache.fr_ranges.(!pos) <- get res.ranges ins.iid;
      fr.Fn_cache.fr_inputs.(!pos) <- get res.inputs ins.iid;
      fr.Fn_cache.fr_reqs.(!pos) <- get res.reqs ins.iid;
      fr.Fn_cache.fr_widths.(!pos) <- get res.widths ins.iid;
      incr pos);
  fr

let replay_fragment res (f : Prog.func) (fr : Fn_cache.fragment) =
  let pos = ref 0 in
  Prog.iter_ins f (fun _ ins ->
      res.ranges.(ins.iid) <- fr.Fn_cache.fr_ranges.(!pos);
      res.inputs.(ins.iid) <- fr.Fn_cache.fr_inputs.(!pos);
      res.reqs.(ins.iid) <- fr.Fn_cache.fr_reqs.(!pos);
      res.widths.(ins.iid) <- fr.Fn_cache.fr_widths.(!pos);
      incr pos)

(* --- driver ---------------------------------------------------------------- *)

(* Interprocedural schedule.  Within one summary-refinement round the
   summaries are frozen (return and argument summaries are only mutated
   between rounds), so the per-function analyses are independent and run
   under [Pool.map]; each task joins call-site argument ranges into its
   own private accumulator and the driver merges them with the (fully
   commutative and associative) interval join, so the result is identical
   at any [--jobs].

   The final recorded pass of the old sequential engine updated each
   function's return summary immediately, so a later function saw the
   {e final} returns of every earlier one.  To parallelize without
   changing a single bit of output, functions are levelized over the
   "calls an earlier-indexed function" relation: within a level no
   function's result can influence another's, and each task resolves a
   callee's return from the finals of earlier levels when the callee has
   a smaller index, else from the round-fixpoint snapshot — exactly the
   view the sequential schedule provides. *)
let analyze ?(config = default_config) ?(engine = Dense) ?jobs ?fn_cache
    (p : Prog.t) : result =
  let jobs = match jobs with None -> 1 | Some n -> Pool.resolve_jobs (Some n) in
  let n_iid = max p.next_iid 1 in
  let res =
    {
      ranges = Array.make n_iid None;
      inputs = Array.make n_iid None;
      reqs = Array.make n_iid None;
      widths = Array.make n_iid None;
      summaries = Hashtbl.create 16;
      stats = { visits = 0; rounds = 0 };
    }
  in
  List.iter
    (fun (f : Prog.func) ->
      Hashtbl.replace res.summaries f.fname
        { s_args = Array.make f.arity Interval.top; s_ret = Interval.top })
    p.funcs;
  let gaddr : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (s, a) -> Hashtbl.replace gaddr s a) (Interp.global_addresses p);
  let func_of : (string, Prog.func) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (f : Prog.func) -> Hashtbl.replace func_of f.fname f) p.funcs;
  let funcs = Array.of_list p.funcs in
  let nf = Array.length funcs in
  let plans = Array.of_list (Pool.map ~jobs (make_plan config) p.funcs) in
  let cg = Callgraph.compute p in
  let add_stats v r =
    res.stats <- { visits = res.stats.visits + v; rounds = res.stats.rounds + r }
  in
  let args_of (f : Prog.func) =
    match Hashtbl.find_opt res.summaries f.fname with
    | Some s -> s.s_args
    | None -> Array.make f.arity Interval.top
  in
  let summary_ret name =
    match Hashtbl.find_opt res.summaries name with
    | Some s -> s.s_ret
    | None -> Interval.top
  in
  let indices = List.init nf Fun.id in
  for _round = 1 to config.interproc_rounds do
    (* One sweep: recompute every return summary and collect call-site
       argument ranges with the current (frozen) summaries. *)
    let tasks =
      Pool.map ~jobs
        (fun i ->
          let f = funcs.(i) in
          let acc = Hashtbl.create 8 in
          let ctx =
            { gaddr; ret_of = summary_ret; args_of = args_of f; func_of;
              config; arg_acc = Some acc; record = None }
          in
          let ret, v, r = analyze_func ctx plans.(i) ~engine in
          (f.fname, ret, acc, v, r))
        indices
    in
    List.iter
      (fun (fname, ret, _, v, r) ->
        add_stats v r;
        match Hashtbl.find_opt res.summaries fname with
        | Some s -> s.s_ret <- ret
        | None -> ())
      tasks;
    let merged = Hashtbl.create 16 in
    List.iter
      (fun (_, _, acc, _, _) ->
        Hashtbl.iter
          (fun callee a ->
            match Hashtbl.find_opt merged callee with
            | None -> Hashtbl.replace merged callee (Array.copy a)
            | Some m -> Array.iteri (fun i r -> m.(i) <- Interval.join m.(i) r) a)
          acc)
      tasks;
    List.iter
      (fun (f : Prog.func) ->
        match Hashtbl.find_opt res.summaries f.fname with
        | None -> ()
        | Some s ->
          if Callgraph.is_recursive cg f.fname then
            s.s_args <- Array.make f.arity Interval.top
          else (
            match Hashtbl.find_opt merged f.fname with
            | Some a -> s.s_args <- a
            | None -> () (* never called: keep ⊤ *)))
      p.funcs
  done;
  (* Final recorded pass, then demand and width assignment per function,
     levelized so the sequential summary-visibility order is preserved. *)
  let ops : Instr.t option array = Array.make n_iid None in
  Prog.iter_all_ins p (fun _ _ ins -> ops.(ins.iid) <- Some ins.op);
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i (f : Prog.func) -> Hashtbl.replace index_of f.fname i) funcs;
  let level = Array.make (max nf 1) 0 in
  Array.iteri
    (fun i (f : Prog.func) ->
      List.iter
        (fun callee ->
          match Hashtbl.find_opt index_of callee with
          | Some j when j < i -> level.(i) <- max level.(i) (level.(j) + 1)
          | Some _ | None -> ())
        (Callgraph.callees cg f.fname))
    funcs;
  let snapshot_ret = Array.map (fun (f : Prog.func) -> summary_ret f.fname) funcs in
  let finals : Interval.t option array = Array.make (max nf 1) None in
  let max_level = Array.fold_left max 0 level in
  let by_level = Array.make (max_level + 1) [] in
  for i = nf - 1 downto 0 do
    by_level.(level.(i)) <- i :: by_level.(level.(i))
  done;
  for lv = 0 to max_level do
    let results =
      Pool.map ~jobs
        (fun i ->
          let f = funcs.(i) in
          let ret_of name =
            match Hashtbl.find_opt index_of name with
            | Some j when j < i -> (
              match finals.(j) with Some r -> r | None -> snapshot_ret.(j))
            | Some j -> snapshot_ret.(j)
            | None -> Interval.top
          in
          let run_live () =
            let ctx =
              { gaddr; ret_of; args_of = args_of f; func_of; config;
                arg_acc = None; record = Some res }
            in
            let ret, v, r = analyze_func ctx plans.(i) ~engine in
            useful_pass config res f plans.(i).pcfg ops;
            assign_widths res f;
            (ret, v, r)
          in
          match fn_cache with
          | None ->
            let ret, v, r = run_live () in
            (i, ret, v, r)
          | Some fc -> (
            let key =
              func_digest ~config ~engine ~gaddr ~args:(args_of f) ~ret_of
                ~callees:(Callgraph.callees cg f.fname) f
            in
            match Fn_cache.find fc key with
            | Some fr ->
              replay_fragment res f fr;
              (i, fr.Fn_cache.fr_ret, fr.Fn_cache.fr_visits,
               fr.Fn_cache.fr_rounds)
            | None ->
              let ret, v, r = run_live () in
              Fn_cache.install fc key
                (extract_fragment res f ~ret ~visits:v ~rounds:r);
              (i, ret, v, r)))
        by_level.(lv)
    in
    List.iter (fun (i, ret, v, r) -> finals.(i) <- Some ret; add_stats v r) results
  done;
  Array.iteri
    (fun i (f : Prog.func) ->
      match (Hashtbl.find_opt res.summaries f.fname, finals.(i)) with
      | Some s, Some ret -> s.s_ret <- ret
      | _ -> ())
    funcs;
  Metrics.add m_fixpoint_iters (float_of_int res.stats.rounds);
  Metrics.add m_fixpoint_visits (float_of_int res.stats.visits);
  res

let range_of res iid = get res.ranges iid
let useful_width_of res iid = get res.reqs iid
let width_of res iid = get res.widths iid
let fixpoint_stats res = res.stats

let defs_analyzed res =
  Array.fold_left
    (fun n o -> match o with Some _ -> n + 1 | None -> n)
    0 res.ranges

let apply res (p : Prog.t) =
  let obs = Metrics.enabled () in
  Prog.iter_all_ins p (fun _ _ ins ->
      match get res.widths ins.iid with
      | None -> ()
      | Some w -> (
        match ins.op with
        | Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _ | Instr.Sext _
          ->
          ins.op <- Instr.with_width ins.op w;
          if obs then Metrics.incr (List.assoc w m_width_assign)
        | Instr.Li _ | Instr.La _ | Instr.Load _ | Instr.Store _
        | Instr.Call _ | Instr.Emit _ -> ()))

let run ?config ?jobs ?fn_cache p =
  Span.with_ ~name:"vrp" (fun () ->
      let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
      let res = analyze ?config ?jobs ?fn_cache p in
      apply res p;
      if t0 > 0.0 then begin
        Metrics.incr m_runs;
        Metrics.observe m_pass_seconds (Unix.gettimeofday () -. t0)
      end;
      res)

let input_ranges_of res iid = get res.inputs iid

let return_range (res : result) fname =
  Option.map (fun s -> s.s_ret) (Hashtbl.find_opt res.summaries fname)

let pp_summary ppf res =
  let widths_assigned =
    Array.fold_left
      (fun n o -> match o with Some _ -> n + 1 | None -> n)
      0 res.widths
  in
  Format.fprintf ppf "defs analyzed: %d; widths assigned: %d@\n"
    (defs_analyzed res) widths_assigned;
  let counts = Hashtbl.create 4 in
  Array.iter
    (function
      | Some w ->
        let c = Option.value ~default:0 (Hashtbl.find_opt counts w) in
        Hashtbl.replace counts w (c + 1)
      | None -> ())
    res.widths;
  List.iter
    (fun w ->
      Format.fprintf ppf "  width %s: %d@\n" (Width.to_string w)
        (Option.value ~default:0 (Hashtbl.find_opt counts w)))
    Width.all
