open Ogc_isa
open Ast
module Prog = Ogc_ir.Prog
module Builder = Ogc_ir.Builder
module Label = Ogc_ir.Label

(* The code generator targets an infinite supply of virtual registers
   ([Reg.vreg]): every expression value gets a fresh temporary and every
   named scalar a dedicated one.  Register assignment, spilling, callee-
   saved save/restore and final frame sizing all happen later, in
   [Ogc_regalloc].  The only frame layout decided here is the local
   array area, at sp-relative offsets [0, frame_size); the matching
   [sub sp]/[add sp] pair is emitted in the exact shape the allocator's
   frame finalization recognizes and re-sizes. *)

(* r28 never carries a program value (the binary optimizer reserves
   r27/r28 as guard scratch), so it is free as assembler scratch for
   frame adjustments too large for an immediate. *)
let scratch = Reg.of_int 28

let width_of_ty = function
  | Tchar -> Width.W8
  | Tshort -> Width.W16
  | Tint -> Width.W32
  | Tlong -> Width.W64

(* Arithmetic promotion: minimum [int], as in C on Alpha. *)
let promote a b =
  match (a, b) with
  | Tlong, _ | _, Tlong -> Tlong
  | (Tchar | Tshort | Tint), (Tchar | Tshort | Tint) -> Tint

let fits_imm v = v >= -32768L && v <= 32767L

type loc =
  | Temp of Reg.t  (** named scalar (or pointer parameter) in a virtual reg *)
  | Glob_scalar of string
  | Glob_array of string
  | Frame_array of int

type binding = { bty : ty; loc : loc; is_ptr : bool }

type loop_ctx = { break_to : Label.t; continue_to : Label.t }

type cg = {
  b : Builder.t;
  prog_funs : (string * fundef) list;
  globals : (string * binding) list;
  fresh_temp : unit -> Reg.t;  (* program-wide counter, like iids *)
  mutable scopes : (string * binding) list list;
  mutable next_slot : int;  (* array-area high-water mark *)
  mutable loops : loop_ctx list;
  exit_label : Label.t;
  ret_ty : ty option;
}

exception Codegen_bug of string

let bug fmt = Fmt.kstr (fun s -> raise (Codegen_bug s)) fmt
let alloc_temp cg = cg.fresh_temp ()

let lookup cg name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some b -> Some b
      | None -> in_scopes rest)
  in
  match in_scopes cg.scopes with
  | Some b -> b
  | None -> (
    match List.assoc_opt name cg.globals with
    | Some b -> b
    | None -> bug "unbound variable %s" name)

let declare cg name b =
  match cg.scopes with
  | [] -> bug "no scope"
  | scope :: rest -> cg.scopes <- ((name, b) :: scope) :: rest

let alloc_array cg ~bytes =
  let s = cg.next_slot in
  cg.next_slot <- s + ((bytes + 7) / 8 * 8);
  Frame_array s

(* --- emission helpers --------------------------------------------------- *)

let emit cg i = ignore (Builder.ins cg.b i)

(* Register move, encoded as the Alpha BIS idiom; the allocator's
   coalescer recognizes exactly this shape. *)
let move cg ~src ~dst =
  if not (Reg.equal src dst) then
    emit cg (Instr.Alu { op = Instr.Or; width = Width.W64; src1 = src;
                         src2 = Instr.Imm 0L; dst })

let load_ty cg ~ty ~base ~offset ~dst =
  let width = width_of_ty ty in
  let signed = match ty with Tchar -> false | Tshort | Tint | Tlong -> true in
  emit cg (Instr.Load { width; signed; base; offset; dst })

let store_ty cg ~ty ~base ~offset ~src =
  emit cg (Instr.Store { width = width_of_ty ty; base; offset; src })

(* Normalize the 64-bit canonical value [src] to type [ty_to], given that it
   currently conforms to [ty_from]; writes the result into [dst]. *)
let normalize cg ~ty_from ~ty_to ~src ~dst =
  let no_op = move cg ~src ~dst in
  match ty_to with
  | Tlong -> no_op
  | Tint -> (
    match ty_from with
    | Tchar | Tshort | Tint -> no_op
    | Tlong -> emit cg (Instr.Sext { width = Width.W32; src; dst }))
  | Tshort -> (
    match ty_from with
    | Tchar | Tshort -> no_op
    | Tint | Tlong -> emit cg (Instr.Sext { width = Width.W16; src; dst }))
  | Tchar -> (
    match ty_from with
    | Tchar -> no_op
    | Tshort | Tint | Tlong ->
      emit cg (Instr.Msk { width = Width.W8; src; dst }))

let li cg ~dst v = emit cg (Instr.Li { dst; imm = v })

(* --- expressions --------------------------------------------------------

   [gen_expr] returns [(reg, ty)]: the 64-bit canonical value of the
   expression and its MiniC type.  The register is either a fresh
   temporary or the dedicated temporary of a named scalar; callers only
   ever read it, so no copying discipline is needed. *)

let shift_of_size = function 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> assert false

let ty_of_num v =
  if v >= 0L && v <= 255L then Tchar
  else if Width.fits v Width.W16 then Tshort
  else if Width.fits v Width.W32 then Tint
  else Tlong

let rec contains_call (e : expr) =
  match e.desc with
  | Num _ | Var _ -> false
  | Index (_, i) -> contains_call i
  | Unop (_, a) | Cast (_, a) -> contains_call a
  | Binop (_, a, b) -> contains_call a || contains_call b
  | Ternary (a, b, c) -> contains_call a || contains_call b || contains_call c
  | Call _ -> true

let rec gen_expr cg (e : expr) : Reg.t * ty =
  match e.desc with
  | Num v ->
    let t = alloc_temp cg in
    li cg ~dst:t v;
    (t, ty_of_num v)
  | Var name -> (
    let b = lookup cg name in
    match b.loc with
    | Temp r -> (r, b.bty)
    | Glob_scalar g ->
      let t = alloc_temp cg in
      emit cg (Instr.La { dst = t; symbol = g });
      load_ty cg ~ty:b.bty ~base:t ~offset:0L ~dst:t;
      (t, b.bty)
    | Glob_array _ | Frame_array _ -> bug "array %s read as scalar" name)
  | Index (name, idx) ->
    let b = lookup cg name in
    let addr, off = gen_element_addr cg b idx in
    let t = alloc_temp cg in
    load_ty cg ~ty:b.bty ~base:addr ~offset:off ~dst:t;
    (t, b.bty)
  | Unop (Neg, a) ->
    let ra, ta = gen_expr cg a in
    let pt = promote ta Tint in
    let t = alloc_temp cg in
    emit cg (Instr.Alu { op = Instr.Sub; width = width_of_ty pt;
                         src1 = Reg.zero; src2 = Instr.Reg ra; dst = t });
    (t, pt)
  | Unop (Lognot, a) ->
    let ra, ta = gen_expr cg a in
    let t = alloc_temp cg in
    emit cg (Instr.Cmp { op = Instr.Ceq; width = width_of_ty (promote ta Tint);
                         src1 = ra; src2 = Instr.Imm 0L; dst = t });
    (t, Tint)
  | Unop (Bitnot, a) ->
    let ra, ta = gen_expr cg a in
    let pt = promote ta Tint in
    let t = alloc_temp cg in
    emit cg (Instr.Alu { op = Instr.Xor; width = width_of_ty pt; src1 = ra;
                         src2 = Instr.Imm (-1L); dst = t });
    (t, pt)
  | Binop ((Andand | Oror), _, _) ->
    (* Value context: materialize 0/1 through the branching lowering. *)
    gen_bool_value cg e
  | Binop (op, a, b) -> gen_binop cg op a b
  | Ternary (c, t, f) ->
    if contains_call t || contains_call f then gen_ternary_branchy cg c t f
    else gen_ternary_cmov cg c t f
  | Call (name, args) -> gen_call cg name args
  | Cast (ty_to, a) ->
    let ra, ta = gen_expr cg a in
    let t = alloc_temp cg in
    normalize cg ~ty_from:ta ~ty_to ~src:ra ~dst:t;
    (t, ty_to)

(* Element address for [b.(idx)]: returns a register plus a constant
   byte offset folded into the eventual load/store. *)
and gen_element_addr cg (b : binding) idx : Reg.t * int64 =
  let elem = size_of_ty b.bty in
  let scale src dst =
    if elem = 1 then move cg ~src ~dst
    else
      emit cg (Instr.Alu { op = Instr.Sll; width = Width.W64; src1 = src;
                           src2 = Instr.Imm (Int64.of_int (shift_of_size elem));
                           dst })
  in
  let ri, _ = gen_expr cg idx in
  let t = alloc_temp cg in
  scale ri t;
  match b.loc with
  | Frame_array off ->
    emit cg (Instr.Alu { op = Instr.Add; width = Width.W64; src1 = t;
                         src2 = Instr.Reg Reg.sp; dst = t });
    (t, Int64.of_int off)
  | Glob_array g ->
    let ta = alloc_temp cg in
    emit cg (Instr.La { dst = ta; symbol = g });
    emit cg (Instr.Alu { op = Instr.Add; width = Width.W64; src1 = t;
                         src2 = Instr.Reg ta; dst = t });
    (t, 0L)
  | Temp r when b.is_ptr ->
    emit cg (Instr.Alu { op = Instr.Add; width = Width.W64; src1 = t;
                         src2 = Instr.Reg r; dst = t });
    (t, 0L)
  | Temp _ | Glob_scalar _ -> bug "indexing a scalar"

and gen_binop cg op a b : Reg.t * ty =
  let alu aop =
    let ra, ta = gen_expr cg a in
    (* Immediate operand folding for the common [x op const] shape. *)
    match b.desc with
    | Num v when fits_imm v && not (Reg.equal ra Reg.zero) ->
      let pt = promote ta (ty_of_num v) in
      let pt = promote pt Tint in
      let t = alloc_temp cg in
      emit cg (Instr.Alu { op = aop; width = width_of_ty pt; src1 = ra;
                           src2 = Instr.Imm v; dst = t });
      (t, pt)
    | _ ->
      let rb, tb = gen_expr cg b in
      let pt = promote (promote ta tb) Tint in
      let t = alloc_temp cg in
      emit cg (Instr.Alu { op = aop; width = width_of_ty pt; src1 = ra;
                           src2 = Instr.Reg rb; dst = t });
      (t, pt)
  in
  let cmp cop ~swap ~negate =
    let x, y = if swap then (b, a) else (a, b) in
    let rx, tx = gen_expr cg x in
    let finish src2 ty2 =
      let pt = promote (promote tx ty2) Tint in
      let t = alloc_temp cg in
      emit cg (Instr.Cmp { op = cop; width = width_of_ty pt; src1 = rx; src2;
                           dst = t });
      if negate then begin
        let t2 = alloc_temp cg in
        emit cg (Instr.Alu { op = Instr.Xor; width = Width.W32; src1 = t;
                             src2 = Instr.Imm 1L; dst = t2 });
        (t2, Tint)
      end
      else (t, Tint)
    in
    match y.desc with
    | Num v when fits_imm v -> finish (Instr.Imm v) (ty_of_num v)
    | _ ->
      let ry, ty_y = gen_expr cg y in
      finish (Instr.Reg ry) ty_y
  in
  match op with
  | Add -> alu Instr.Add
  | Sub -> alu Instr.Sub
  | Mul -> alu Instr.Mul
  | Div -> alu Instr.Div
  | Rem -> alu Instr.Rem
  | Band -> alu Instr.And
  | Bor -> alu Instr.Or
  | Bxor -> alu Instr.Xor
  | Shl -> alu Instr.Sll
  | Shr -> alu Instr.Sra (* arithmetic: all MiniC values are canonical signed *)
  | Eq -> cmp Instr.Ceq ~swap:false ~negate:false
  | Neq -> cmp Instr.Ceq ~swap:false ~negate:true
  | Lt -> cmp Instr.Clt ~swap:false ~negate:false
  | Le -> cmp Instr.Cle ~swap:false ~negate:false
  | Gt -> cmp Instr.Clt ~swap:true ~negate:false
  | Ge -> cmp Instr.Cle ~swap:true ~negate:false
  | Andand | Oror -> bug "short-circuit operator in gen_binop"

and gen_ternary_cmov cg c t f : Reg.t * ty =
  let rc, _ = gen_expr cg c in
  let rt, tt = gen_expr cg t in
  let rf, tf = gen_expr cg f in
  let pt = promote (promote tt tf) Tint in
  let dst = alloc_temp cg in
  move cg ~src:rf ~dst;
  emit cg (Instr.Cmov { cond = Instr.Ne; width = width_of_ty pt; test = rc;
                        src = Instr.Reg rt; dst });
  (dst, pt)

and gen_ternary_branchy cg c t f : Reg.t * ty =
  let dst = alloc_temp cg in
  let then_l = Builder.new_block cg.b in
  let else_l = Builder.new_block cg.b in
  let join_l = Builder.new_block cg.b in
  gen_cond cg c ~if_true:then_l ~if_false:else_l;
  Builder.switch_to cg.b then_l;
  let rt, tt = gen_expr cg t in
  move cg ~src:rt ~dst;
  Builder.terminate cg.b (Prog.Jump join_l);
  Builder.switch_to cg.b else_l;
  let rf, tf = gen_expr cg f in
  move cg ~src:rf ~dst;
  Builder.terminate cg.b (Prog.Jump join_l);
  Builder.switch_to cg.b join_l;
  (dst, promote (promote tt tf) Tint)

and gen_bool_value cg (e : expr) : Reg.t * ty =
  let dst = alloc_temp cg in
  let true_l = Builder.new_block cg.b in
  let false_l = Builder.new_block cg.b in
  let join_l = Builder.new_block cg.b in
  gen_cond cg e ~if_true:true_l ~if_false:false_l;
  Builder.switch_to cg.b true_l;
  li cg ~dst 1L;
  Builder.terminate cg.b (Prog.Jump join_l);
  Builder.switch_to cg.b false_l;
  li cg ~dst 0L;
  Builder.terminate cg.b (Prog.Jump join_l);
  Builder.switch_to cg.b join_l;
  (dst, Tint)

(* Lower [e] as a branch condition, terminating the current block. *)
and gen_cond cg (e : expr) ~if_true ~if_false =
  match e.desc with
  | Binop (Andand, a, b) ->
    let mid = Builder.new_block cg.b in
    gen_cond cg a ~if_true:mid ~if_false;
    Builder.switch_to cg.b mid;
    gen_cond cg b ~if_true ~if_false
  | Binop (Oror, a, b) ->
    let mid = Builder.new_block cg.b in
    gen_cond cg a ~if_true ~if_false:mid;
    Builder.switch_to cg.b mid;
    gen_cond cg b ~if_true ~if_false
  | Unop (Lognot, a) -> gen_cond cg a ~if_true:if_false ~if_false:if_true
  | _ ->
    let r, _ = gen_expr cg e in
    Builder.terminate cg.b
      (Prog.Branch { cond = Instr.Ne; src = r; if_true; if_false })

and gen_call cg name args : Reg.t * ty =
  let f =
    match List.assoc_opt name cg.prog_funs with
    | Some f -> f
    | None -> bug "call to unknown function %s" name
  in
  (* Evaluate the arguments into temporaries first; only then move them
     into the argument registers, so a nested call cannot clobber an
     already-placed argument.  Temporaries live across the call are the
     allocator's problem (callee-saved color or spill slot). *)
  let arg_vals =
    List.map2
      (fun (p : param) (a : expr) ->
        if p.parray then begin
          (* array argument: pass its address *)
          match a.desc with
          | Var vn -> (
            let bnd = lookup cg vn in
            let t = alloc_temp cg in
            (match bnd.loc with
            | Glob_array g -> emit cg (Instr.La { dst = t; symbol = g })
            | Frame_array off ->
              emit cg (Instr.Alu { op = Instr.Add; width = Width.W64;
                                   src1 = Reg.sp;
                                   src2 = Instr.Imm (Int64.of_int off); dst = t })
            | Temp r when bnd.is_ptr -> move cg ~src:r ~dst:t
            | Temp _ | Glob_scalar _ -> bug "passing scalar %s as array" vn);
            t)
          | _ -> bug "array argument must be a variable"
        end
        else begin
          let r, ta = gen_expr cg a in
          (* Narrow the value to the parameter type at the call boundary. *)
          if ta <> p.pty && width_of_ty p.pty < width_of_ty ta then begin
            let t = alloc_temp cg in
            normalize cg ~ty_from:ta ~ty_to:p.pty ~src:r ~dst:t;
            t
          end
          else r
        end)
      f.params args
  in
  List.iteri (fun i r -> move cg ~src:r ~dst:(Reg.arg i)) arg_vals;
  emit cg (Instr.Call { callee = name });
  match f.ret with
  | None ->
    (* void call in statement position: hand back the zero register *)
    (Reg.zero, Tint)
  | Some rt ->
    let t = alloc_temp cg in
    move cg ~src:Reg.ret ~dst:t;
    (t, rt)

(* --- statements --------------------------------------------------------- *)

let assign_to_binding cg (b : binding) ~rhs ~rhs_ty =
  match b.loc with
  | Temp dst -> normalize cg ~ty_from:rhs_ty ~ty_to:b.bty ~src:rhs ~dst
  | Glob_scalar g ->
    let ta = alloc_temp cg in
    emit cg (Instr.La { dst = ta; symbol = g });
    store_ty cg ~ty:b.bty ~base:ta ~offset:0L ~src:rhs
  | Glob_array _ | Frame_array _ -> bug "assignment to array"

let rec gen_stmt cg (s : stmt) =
  match s.sdesc with
  | Decl (t, name, init) ->
    let b = { bty = t; loc = Temp (alloc_temp cg); is_ptr = false } in
    declare cg name b;
    let rhs, rhs_ty =
      match init with
      | Some e -> gen_expr cg e
      | None ->
        let r = alloc_temp cg in
        li cg ~dst:r 0L;
        (r, t)
    in
    assign_to_binding cg b ~rhs ~rhs_ty
  | Decl_array (t, name, size) ->
    let loc = alloc_array cg ~bytes:(size * size_of_ty t) in
    declare cg name { bty = t; loc; is_ptr = false }
  | Assign (Lvar name, e) ->
    let b = lookup cg name in
    let rhs, rhs_ty = gen_expr cg e in
    assign_to_binding cg b ~rhs ~rhs_ty
  | Assign (Lindex (name, idx), e) ->
    let b = lookup cg name in
    let addr, off = gen_element_addr cg b idx in
    let rhs, _ = gen_expr cg e in
    store_ty cg ~ty:b.bty ~base:addr ~offset:off ~src:rhs
  | Op_assign (op, Lvar name, e) ->
    let b = lookup cg name in
    let cur, cur_ty = gen_expr cg { desc = Var name; pos = s.spos } in
    let rhs, rhs_ty = gen_apply cg op cur cur_ty e in
    assign_to_binding cg b ~rhs ~rhs_ty
  | Op_assign (op, Lindex (name, idx), e) ->
    let b = lookup cg name in
    let addr, off = gen_element_addr cg b idx in
    let cur = alloc_temp cg in
    load_ty cg ~ty:b.bty ~base:addr ~offset:off ~dst:cur;
    let rhs, _ = gen_apply cg op cur b.bty e in
    store_ty cg ~ty:b.bty ~base:addr ~offset:off ~src:rhs
  | If (c, then_, else_) ->
    let then_l = Builder.new_block cg.b in
    let join_l = Builder.new_block cg.b in
    let else_l = if else_ = [] then join_l else Builder.new_block cg.b in
    gen_cond cg c ~if_true:then_l ~if_false:else_l;
    Builder.switch_to cg.b then_l;
    gen_body cg then_;
    Builder.terminate cg.b (Prog.Jump join_l);
    if else_ <> [] then begin
      Builder.switch_to cg.b else_l;
      gen_body cg else_;
      Builder.terminate cg.b (Prog.Jump join_l)
    end;
    Builder.switch_to cg.b join_l
  | While (c, body) ->
    let head_l = Builder.new_block cg.b in
    let body_l = Builder.new_block cg.b in
    let exit_l = Builder.new_block cg.b in
    Builder.terminate cg.b (Prog.Jump head_l);
    Builder.switch_to cg.b head_l;
    gen_cond cg c ~if_true:body_l ~if_false:exit_l;
    Builder.switch_to cg.b body_l;
    cg.loops <- { break_to = exit_l; continue_to = head_l } :: cg.loops;
    gen_body cg body;
    cg.loops <- List.tl cg.loops;
    Builder.terminate cg.b (Prog.Jump head_l);
    Builder.switch_to cg.b exit_l
  | Do_while (body, c) ->
    let body_l = Builder.new_block cg.b in
    let cond_l = Builder.new_block cg.b in
    let exit_l = Builder.new_block cg.b in
    Builder.terminate cg.b (Prog.Jump body_l);
    Builder.switch_to cg.b body_l;
    cg.loops <- { break_to = exit_l; continue_to = cond_l } :: cg.loops;
    gen_body cg body;
    cg.loops <- List.tl cg.loops;
    Builder.terminate cg.b (Prog.Jump cond_l);
    Builder.switch_to cg.b cond_l;
    gen_cond cg c ~if_true:body_l ~if_false:exit_l;
    Builder.switch_to cg.b exit_l
  | For (init, cond, step, body) ->
    cg.scopes <- [] :: cg.scopes;
    Option.iter (gen_stmt cg) init;
    let head_l = Builder.new_block cg.b in
    let body_l = Builder.new_block cg.b in
    let step_l = Builder.new_block cg.b in
    let exit_l = Builder.new_block cg.b in
    Builder.terminate cg.b (Prog.Jump head_l);
    Builder.switch_to cg.b head_l;
    (match cond with
    | Some c -> gen_cond cg c ~if_true:body_l ~if_false:exit_l
    | None -> Builder.terminate cg.b (Prog.Jump body_l));
    Builder.switch_to cg.b body_l;
    cg.loops <- { break_to = exit_l; continue_to = step_l } :: cg.loops;
    gen_body cg body;
    cg.loops <- List.tl cg.loops;
    Builder.terminate cg.b (Prog.Jump step_l);
    Builder.switch_to cg.b step_l;
    Option.iter (gen_stmt cg) step;
    Builder.terminate cg.b (Prog.Jump head_l);
    Builder.switch_to cg.b exit_l;
    cg.scopes <- List.tl cg.scopes
  | Break -> (
    match cg.loops with
    | [] -> bug "break outside loop"
    | l :: _ ->
      Builder.terminate cg.b (Prog.Jump l.break_to);
      let dead = Builder.new_block cg.b in
      Builder.switch_to cg.b dead)
  | Continue -> (
    match cg.loops with
    | [] -> bug "continue outside loop"
    | l :: _ ->
      Builder.terminate cg.b (Prog.Jump l.continue_to);
      let dead = Builder.new_block cg.b in
      Builder.switch_to cg.b dead)
  | Return e ->
    (match e with
    | Some e ->
      let r, ty_r = gen_expr cg e in
      (match cg.ret_ty with
      | Some rt when rt <> ty_r && width_of_ty rt < width_of_ty ty_r ->
        normalize cg ~ty_from:ty_r ~ty_to:rt ~src:r ~dst:Reg.ret
      | _ -> move cg ~src:r ~dst:Reg.ret)
    | None -> ());
    Builder.terminate cg.b (Prog.Jump cg.exit_label);
    let dead = Builder.new_block cg.b in
    Builder.switch_to cg.b dead
  | Expr_stmt e -> ignore (gen_expr cg e)
  | Emit e ->
    let r, _ = gen_expr cg e in
    emit cg (Instr.Emit { src = r })

(* [cur op= e]: compute [cur op e]; reuses the binop machinery. *)
and gen_apply cg op cur cur_ty (e : expr) : Reg.t * ty =
  let aop =
    match op with
    | Add -> Instr.Add
    | Sub -> Instr.Sub
    | Mul -> Instr.Mul
    | Div -> Instr.Div
    | Rem -> Instr.Rem
    | Band -> Instr.And
    | Bor -> Instr.Or
    | Bxor -> Instr.Xor
    | Shl -> Instr.Sll
    | Shr -> Instr.Sra
    | Andand | Oror | Eq | Neq | Lt | Le | Gt | Ge -> bug "bad op-assign"
  in
  match e.desc with
  | Num v when fits_imm v ->
    let pt = promote (promote cur_ty (ty_of_num v)) Tint in
    let t = alloc_temp cg in
    emit cg (Instr.Alu { op = aop; width = width_of_ty pt; src1 = cur;
                         src2 = Instr.Imm v; dst = t });
    (t, pt)
  | _ ->
    let rb, tb = gen_expr cg e in
    let pt = promote (promote cur_ty tb) Tint in
    let t = alloc_temp cg in
    emit cg (Instr.Alu { op = aop; width = width_of_ty pt; src1 = cur;
                         src2 = Instr.Reg rb; dst = t });
    (t, pt)

and gen_body cg body =
  cg.scopes <- [] :: cg.scopes;
  List.iter (gen_stmt cg) body;
  cg.scopes <- List.tl cg.scopes

(* --- functions and globals ---------------------------------------------- *)

let gen_fun ~fresh_iid ~fresh_temp ~prog_funs ~globals (f : fundef) : Prog.func
    =
  let b = Builder.create ~fresh_iid ~fname:f.fname ~arity:(List.length f.params) in
  let entry_l = Builder.new_block b in
  let exit_l = Builder.new_block b in
  let body_l = Builder.new_block b in
  let cg =
    {
      b;
      prog_funs;
      globals;
      fresh_temp;
      scopes = [ [] ];
      next_slot = 0;
      loops = [];
      exit_label = exit_l;
      ret_ty = f.ret;
    }
  in
  (* Parameters: a dedicated temporary each; the prologue (emitted last)
     copies the incoming argument registers there. *)
  let param_temps =
    List.map
      (fun (p : param) ->
        let t = alloc_temp cg in
        declare cg p.pname { bty = p.pty; loc = Temp t; is_ptr = p.parray };
        t)
      f.params
  in
  Builder.switch_to cg.b body_l;
  gen_body cg f.body;
  (* Fall off the end: return (r0 unspecified for non-void, as in C). *)
  Builder.terminate cg.b (Prog.Jump exit_l);
  (* The frame holds only local arrays; the allocator later grows it to
     cover spill slots and callee-saved save slots, rewriting the
     [sub sp]/[add sp] pair emitted here. *)
  let frame_size = (cg.next_slot + 15) / 16 * 16 in
  (* Prologue. *)
  Builder.switch_to cg.b entry_l;
  if frame_size > 0 then
    if frame_size <= 32767 then
      emit cg (Instr.Alu { op = Instr.Sub; width = Width.W64; src1 = Reg.sp;
                           src2 = Instr.Imm (Int64.of_int frame_size);
                           dst = Reg.sp })
    else begin
      li cg ~dst:scratch (Int64.of_int frame_size);
      emit cg (Instr.Alu { op = Instr.Sub; width = Width.W64; src1 = Reg.sp;
                           src2 = Instr.Reg scratch; dst = Reg.sp })
    end;
  List.iteri (fun i t -> move cg ~src:(Reg.arg i) ~dst:t) param_temps;
  Builder.terminate cg.b (Prog.Jump body_l);
  (* Epilogue. *)
  Builder.switch_to cg.b exit_l;
  if frame_size > 0 then
    if frame_size <= 32767 then
      emit cg (Instr.Alu { op = Instr.Add; width = Width.W64; src1 = Reg.sp;
                           src2 = Instr.Imm (Int64.of_int frame_size);
                           dst = Reg.sp })
    else begin
      li cg ~dst:scratch (Int64.of_int frame_size);
      emit cg (Instr.Alu { op = Instr.Add; width = Width.W64; src1 = Reg.sp;
                           src2 = Instr.Reg scratch; dst = Reg.sp })
    end;
  Builder.terminate cg.b Prog.Return;
  Builder.finish cg.b ~frame_size

let global_image = function
  | Gscalar (t, name, v) ->
    let bytes = Bytes.make (size_of_ty t) '\000' in
    (match t with
    | Tchar -> Bytes.set_uint8 bytes 0 (Int64.to_int (Int64.logand v 0xFFL))
    | Tshort ->
      Bytes.set_int16_le bytes 0 (Int64.to_int (Int64.logand v 0xFFFFL))
    | Tint -> Bytes.set_int32_le bytes 0 (Int64.to_int32 v)
    | Tlong -> Bytes.set_int64_le bytes 0 v);
    { Prog.gname = name; init = bytes }
  | Garray (t, name, size, init) ->
    let esz = size_of_ty t in
    let bytes = Bytes.make (size * esz) '\000' in
    (match init with
    | None -> ()
    | Some (Init_string s) ->
      String.iteri (fun i c -> Bytes.set_uint8 bytes (i * esz) (Char.code c)) s
    | Some (Init_list vs) ->
      List.iteri
        (fun i v ->
          let off = i * esz in
          match t with
          | Tchar -> Bytes.set_uint8 bytes off (Int64.to_int (Int64.logand v 0xFFL))
          | Tshort ->
            Bytes.set_int16_le bytes off (Int64.to_int (Int64.logand v 0xFFFFL))
          | Tint -> Bytes.set_int32_le bytes off (Int64.to_int32 v)
          | Tlong -> Bytes.set_int64_le bytes off v)
        vs);
    { Prog.gname = name; init = bytes }

let gen_program (p : program) : Prog.t =
  let counter = ref 0 in
  let fresh_iid () =
    incr counter;
    !counter
  in
  (* Temporaries are numbered program-wide, like instruction ids: with a
     flat register file, a pre-allocation program then interprets
     correctly as long as no function recurses, which the differential
     tests rely on. *)
  let tcounter = ref 0 in
  let fresh_temp () =
    let i = !tcounter in
    incr tcounter;
    Reg.vreg i
  in
  let prog_funs = List.map (fun (f : fundef) -> (f.fname, f)) p.funcs in
  let globals =
    List.map
      (function
        | Gscalar (t, name, _) ->
          (name, { bty = t; loc = Glob_scalar name; is_ptr = false })
        | Garray (t, name, _, _) ->
          (name, { bty = t; loc = Glob_array name; is_ptr = false }))
      p.globals
  in
  let funcs =
    List.map (gen_fun ~fresh_iid ~fresh_temp ~prog_funs ~globals) p.funcs
  in
  let gimages = List.map global_image p.globals in
  Prog.create ~globals:gimages funcs
