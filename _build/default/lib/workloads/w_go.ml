(* SpecInt95 `go` surrogate: positional evaluation of 9x9 go boards.
   Dominated by neighbourhood scans over small-valued board arrays,
   influence propagation and chain liberty counting — the branch- and
   byte-heavy profile of the original game engine. *)

let name = "go"
let description = "9x9 go board evaluation with influence propagation"

let source () =
  Printf.sprintf
    {|
// go: random positions, influence maps, liberty counts, pattern scores.
long input_scale = 3;
int seed = 555;
char board[81];     // 0 empty, 1 black, 2 white
short influence[81];
char visited[81];
char libmark[81];

int rnd() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

void setup_board() {
  for (int i = 0; i < 81; i++) {
    int r = rnd() & 7;
    if (r < 3) board[i] = 0;
    else if (r < 6) board[i] = 1;
    else board[i] = 2;
  }
}

// count liberties of the chain containing p (depth-first flood)
int liberties(int p) {
  int color = board[p];
  for (int i = 0; i < 81; i++) {
    visited[i] = 0;
    libmark[i] = 0;
  }
  int stack[81];
  int sp = 0;
  int libs = 0;
  stack[0] = p;
  sp = 1;
  visited[p] = 1;
  while (sp > 0) {
    sp--;
    int q = stack[sp];
    int row = q / 9;
    int col = q - row * 9;
    for (int d = 0; d < 4; d++) {
      int nr = row;
      int nc = col;
      if (d == 0) nr = row - 1;
      if (d == 1) nr = row + 1;
      if (d == 2) nc = col - 1;
      if (d == 3) nc = col + 1;
      if (nr >= 0 && nr < 9 && nc >= 0 && nc < 9) {
        int nq = nr * 9 + nc;
        if (board[nq] == 0) {
          if (!libmark[nq]) {
            libmark[nq] = 1;
            libs++;
          }
        } else if (board[nq] == color && !visited[nq]) {
          visited[nq] = 1;
          stack[sp] = nq;
          sp++;
        }
      }
    }
  }
  return libs;
}

int main() {
  long score = 0;
  long total_libs = 0;
  int games = 12 * (int)input_scale;
  for (int g = 0; g < games; g++) {
    setup_board();
    // influence propagation
    for (int i = 0; i < 81; i++) {
      if (board[i] == 1) influence[i] = 64;
      else if (board[i] == 2) influence[i] = -64;
      else influence[i] = 0;
    }
    for (int round = 0; round < 8; round++) {
      for (int i = 0; i < 81; i++) {
        int row = i / 9;
        int col = i - row * 9;
        int acc = influence[i] * 4;
        int cnt = 4;
        if (row > 0) { acc += influence[i - 9]; cnt++; }
        if (row < 8) { acc += influence[i + 9]; cnt++; }
        if (col > 0) { acc += influence[i - 1]; cnt++; }
        if (col < 8) { acc += influence[i + 1]; cnt++; }
        influence[i] = (short)(acc / cnt);
      }
    }
    for (int i = 0; i < 81; i++) score += influence[i];
    // liberties of a sample of stones
    for (int s = 0; s < 12; s++) {
      int p = rnd() %% 81;
      if (board[p] != 0) total_libs += liberties(p);
    }
    // 3x3 pattern scoring
    for (int row = 1; row < 8; row++) {
      for (int col = 1; col < 8; col++) {
        int p = row * 9 + col;
        int pat = board[p] * 9 + board[p - 1] * 3 + board[p + 1]
                + board[p - 9] * 27 + board[p + 9] * 81;
        score = score * 2 + (pat & 63);
      }
    }
  }
  emit(score);
  emit(total_libs);
  return 0;
}
|}

