(* Dense fixpoint engine vs the retained naive reference.

   The dense worklist engine is sweep-equivalent by construction: its
   round barrier makes it visit exactly the blocks a full
   reverse-postorder sweep would find changed, so every externally
   observable analysis fact — per-instruction ranges, useful widths,
   assigned widths, per-function return summaries, and the re-encoded
   program itself — must be byte-identical to the naive engine's, on any
   program, at any [--jobs].  These properties pin that contract down on
   generated MiniC and raw-IR programs, and check the SCC-ordering fact
   the priority worklist relies on. *)

open Ogc_isa
module Label = Ogc_ir.Label
module Prog = Ogc_ir.Prog
module Cfg = Ogc_ir.Cfg
module Scc = Ogc_ir.Scc
module Asm = Ogc_ir.Asm
module Interp = Ogc_ir.Interp
module Minic = Ogc_minic.Minic
module Vrp = Ogc_core.Vrp
module Interval = Ogc_core.Interval
module Gen_minic = Ogc_fuzz.Gen_minic
module Gen_ir = Ogc_fuzz.Gen_ir

let interp_cfg = { Interp.default_config with max_steps = 2_000_000 }

let max_iid p =
  let m = ref 0 in
  Prog.iter_all_ins p (fun _ _ ins ->
      if ins.Prog.iid > !m then m := ins.Prog.iid);
  !m

let str_of_range = function
  | None -> "-"
  | Some rng -> Interval.to_string rng

let str_of_width = function None -> "-" | Some w -> Width.to_string w

(* Every externally observable fact of [ra] and [rb] must agree on [p];
   [what] names the two engines in the failure message. *)
let same_results ~what p ra rb =
  let n = max_iid p in
  for iid = 0 to n do
    let a = str_of_range (Vrp.range_of ra iid)
    and b = str_of_range (Vrp.range_of rb iid) in
    if a <> b then
      QCheck.Test.fail_reportf "%s: range of iid %d: %s vs %s" what iid a b;
    let a = str_of_width (Vrp.useful_width_of ra iid)
    and b = str_of_width (Vrp.useful_width_of rb iid) in
    if a <> b then
      QCheck.Test.fail_reportf "%s: useful width of iid %d: %s vs %s" what iid
        a b;
    let a = str_of_width (Vrp.width_of ra iid)
    and b = str_of_width (Vrp.width_of rb iid) in
    if a <> b then
      QCheck.Test.fail_reportf "%s: width of iid %d: %s vs %s" what iid a b
  done;
  List.iter
    (fun (f : Prog.func) ->
      let a = str_of_range (Vrp.return_range ra f.fname)
      and b = str_of_range (Vrp.return_range rb f.fname) in
      if a <> b then
        QCheck.Test.fail_reportf "%s: return range of %s: %s vs %s" what
          f.fname a b)
    p.Prog.funcs;
  true

(* Dense and naive must also re-encode identically and preserve output. *)
let same_reencoding p =
  let pd = Prog.copy p and pn = Prog.copy p in
  let rd = Vrp.analyze ~engine:Vrp.Dense pd in
  let rn = Vrp.analyze ~engine:Vrp.Naive pn in
  Vrp.apply rd pd;
  Vrp.apply rn pn;
  let ad = Asm.to_string pd and an = Asm.to_string pn in
  if ad <> an then
    QCheck.Test.fail_reportf "re-encoded programs differ:\n%s\n----\n%s" ad an;
  let cd = (Interp.run ~config:interp_cfg pd).Interp.checksum in
  let cn = (Interp.run ~config:interp_cfg pn).Interp.checksum in
  if not (Int64.equal cd cn) then
    QCheck.Test.fail_reportf "re-encoded checksums differ: %Ld vs %Ld" cd cn;
  true

let prop_dense_eq_naive_minic =
  QCheck.Test.make ~name:"dense == naive on generated MiniC" ~count:60
    Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      let rd = Vrp.analyze ~engine:Vrp.Dense p in
      let rn = Vrp.analyze ~engine:Vrp.Naive p in
      same_results ~what:"dense vs naive (minic)" p rd rn
      && same_reencoding p)

let prop_dense_eq_naive_ir =
  QCheck.Test.make ~name:"dense == naive on generated raw IR" ~count:60
    Gen_ir.arbitrary_program (fun p ->
      let rd = Vrp.analyze ~engine:Vrp.Dense p in
      let rn = Vrp.analyze ~engine:Vrp.Naive p in
      same_results ~what:"dense vs naive (ir)" p rd rn && same_reencoding p)

let prop_jobs_identical =
  QCheck.Test.make ~name:"dense identical at --jobs 1/2/8" ~count:30
    Gen_minic.arbitrary_program (fun src ->
      let p = Minic.compile src in
      let r1 = Vrp.analyze ~engine:Vrp.Dense ~jobs:1 p in
      let r2 = Vrp.analyze ~engine:Vrp.Dense ~jobs:2 p in
      let r8 = Vrp.analyze ~engine:Vrp.Dense ~jobs:8 p in
      same_results ~what:"jobs 1 vs 2" p r1 r2
      && same_results ~what:"jobs 1 vs 8" p r1 r8)

(* Reverse postorder is a topological order of the SCC condensation:
   cross-component CFG edges always step to a strictly later component. *)
let prop_scc_topological =
  QCheck.Test.make ~name:"SCC ids topological over CFG edges" ~count:60
    Gen_ir.arbitrary_program (fun p ->
      List.iter
        (fun (f : Prog.func) ->
          let cfg = Cfg.of_func f in
          let scc = Scc.of_cfg cfg in
          for bi = 0 to Array.length f.blocks - 1 do
            let l = Label.of_int bi in
            if Cfg.is_reachable cfg l then
              List.iter
                (fun s ->
                  let cu = Scc.comp scc bi
                  and cv = Scc.comp scc (Label.to_int s) in
                  if cu <> cv && cu >= cv then
                    QCheck.Test.fail_reportf
                      "%s: edge b%d -> b%d goes backwards in comp rank \
                       (%d -> %d)"
                      f.fname bi (Label.to_int s) cu cv)
                (Cfg.succs cfg l)
          done)
        p.Prog.funcs;
      true)

(* Hand-built digraph: two 2-cycles bridged by an acyclic spine. *)
let test_scc_basic () =
  let succs = function
    | 0 -> [ 1 ]
    | 1 -> [ 2; 0 ] (* {0,1} cycle *)
    | 2 -> [ 3 ]
    | 3 -> [ 4; 3 ] (* self-loop *)
    | 4 -> [ 5 ]
    | 5 -> [ 4 ] (* {4,5} would cycle, but 5 -> 4 makes it so *)
    | _ -> []
  in
  let t = Scc.compute ~n:6 ~succs in
  Alcotest.(check int) "component count" 4 (Scc.count t);
  Alcotest.(check bool) "0 and 1 share" true (Scc.comp t 0 = Scc.comp t 1);
  Alcotest.(check bool) "4 and 5 share" true (Scc.comp t 4 = Scc.comp t 5);
  Alcotest.(check bool) "0 in cycle" true (Scc.in_cycle t 0);
  Alcotest.(check bool) "3 self-loop in cycle" true (Scc.in_cycle t 3);
  Alcotest.(check bool) "2 not in cycle" false (Scc.in_cycle t 2);
  Alcotest.(check bool) "has cycle" true (Scc.has_cycle t);
  Alcotest.(check bool) "topological" true
    (Scc.comp t 0 < Scc.comp t 2
    && Scc.comp t 2 < Scc.comp t 3
    && Scc.comp t 3 < Scc.comp t 4);
  let dag = Scc.compute ~n:3 ~succs:(function 0 -> [ 1; 2 ] | 1 -> [ 2 ] | _ -> []) in
  Alcotest.(check bool) "dag has no cycle" false (Scc.has_cycle dag)

let () =
  Alcotest.run "vrp_dense"
    [
      ("scc", [ Alcotest.test_case "basic digraph" `Quick test_scc_basic ]);
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_dense_eq_naive_minic;
            prop_dense_eq_naive_ir;
            prop_jobs_identical;
            prop_scc_topological;
          ] );
    ]
