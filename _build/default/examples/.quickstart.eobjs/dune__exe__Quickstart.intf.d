examples/quickstart.mli:
