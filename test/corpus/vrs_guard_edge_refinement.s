# Found by `ogc fuzz --seed 42 -n 60` (program 0, minimized; chain
# cleanup,vrp,encode-widths,bb-profile,value-profile,vrs:cost=30).
# VRS guards compare with their own destination (`cmpeq x, r27, r27`),
# and VRP's branch-edge refinement read the comparand's range from the
# block OUT-state, i.e. the 0/1 compare result instead of the comparand.
# In a clone-of-clone (no assumption attached) that mis-refined the
# specialized value to [1,1]; constprop folded the loop's accumulator
# update to `li #1` and the loop never terminated.  Fixed by refusing
# cmp edge refinement when either operand is redefined at or after the
# compare, including by the compare itself.

func main(0) frame=208
L0:
  [ 308] jump L1
L1:
  [  90] cmplt32 r14, #9, r4
  [  91] bne r4, L2, L4
L2:
  [  92] xor r13, #-1, r4
  [  93] li #65536, r3
  [  94] sub32 r9, r3, r1
  [  95] sub r4, r1, r3
  [ 113] jump L3
L3:
  [ 115] or r3, #0, r14
  [ 116] jump L1
L4:
  [ 132] jump L5
L5:
  [ 237] cmplt32 r4, #7, r2
  [ 238] jump L6
L6:
  [ 298] or r2, #0, r0
  [ 299] ret
