(* Width audit: where do a workload's wide operations come from?  Prints
   the dynamic class/width matrix (the paper's Table 3 for one benchmark)
   plus the hottest instructions that VRP could not narrow — exactly what
   a compiler engineer would look at before adding specialization points.

   Run with: dune exec examples/width_audit.exe [-- <workload>] *)

open Ogc_isa
module Workload = Ogc_workloads.Workload
module Interp = Ogc_ir.Interp
module Prog = Ogc_ir.Prog
module Vrp = Ogc_core.Vrp
module Render = Ogc_harness.Render

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "compress" in
  let w = Workload.find name in
  Format.printf "width audit of %s (train input)@.@." w.Workload.name;
  let prog = Workload.compile w Workload.Train in
  let res = Vrp.run prog in
  (* Dynamic counts by executing with basic-block profiling. *)
  let counts : Interp.bb_counts = Hashtbl.create 64 in
  let out = Interp.run ~bb_counts:counts prog in
  let dyn = Hashtbl.create 256 in
  Prog.iter_all_ins prog (fun f b ins ->
      let c = Interp.count_of counts f.Prog.fname b.Prog.label in
      if c > 0 then Hashtbl.replace dyn ins.Prog.iid (c, f.Prog.fname, ins));
  (* Class x width matrix. *)
  let matrix = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (c, _, (ins : Prog.ins)) ->
      let ic = Instr.iclass ins.Prog.op in
      if List.mem ic Instr.all_alu_classes then begin
        let key = (ic, Instr.width ins.Prog.op) in
        Hashtbl.replace matrix key
          (c + Option.value ~default:0 (Hashtbl.find_opt matrix key))
      end)
    dyn;
  let class_total ic =
    List.fold_left
      (fun a w -> a + Option.value ~default:0 (Hashtbl.find_opt matrix (ic, w)))
      0 Width.all
  in
  let rows =
    Instr.all_alu_classes
    |> List.filter (fun ic -> class_total ic > 0)
    |> List.sort (fun a b -> compare (class_total b) (class_total a))
    |> List.map (fun ic ->
           let tot = class_total ic in
           Instr.iclass_name ic
           :: Printf.sprintf "%.2f%%"
                (100.0 *. float_of_int tot /. float_of_int out.Interp.steps)
           :: List.map
                (fun w ->
                  Render.pct
                    (float_of_int
                       (Option.value ~default:0 (Hashtbl.find_opt matrix (ic, w)))
                    /. float_of_int tot))
                [ Width.W64; Width.W32; Width.W16; Width.W8 ])
  in
  Format.printf "%s"
    (Render.table
       ~header:[ "Type"; "% of run-time"; "64b"; "32b"; "16b"; "8b" ] rows);
  (* The hottest still-wide instructions: specialization candidates. *)
  Format.printf "@.hottest instructions VRP left at 64 bits:@.";
  let wide =
    Hashtbl.fold
      (fun iid (c, fname, (ins : Prog.ins)) acc ->
        match ins.Prog.op with
        | Instr.Alu _ | Instr.Load _
          when Width.equal (Instr.width ins.Prog.op) Width.W64 ->
          (c, fname, iid, ins) :: acc
        | _ -> acc)
      dyn []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare b a)
  in
  List.iteri
    (fun i (c, fname, iid, (ins : Prog.ins)) ->
      if i < 10 then
        Format.printf "  %8d x  %-10s [%4d] %s   (useful width %s)@." c fname
          iid
          (Instr.to_string ins.Prog.op)
          (match Vrp.useful_width_of res iid with
          | Some w -> Width.to_string w
          | None -> "?"))
    wide;
  Format.printf "@.%d dynamic instructions in total@." out.Interp.steps
