(* Observability tests: the sharded metrics registry (merge = Σ shards
   under real multi-domain recording), the Prometheus exposition format,
   trace-event export well-formedness, structured logging, and the
   determinism contract — an `analyze` result is byte-identical whether
   or not tracing/metrics are recording. *)

module J = Ogc_json.Json
module Metrics = Ogc_obs.Metrics
module Span = Ogc_obs.Span
module Log = Ogc_obs.Log
module Protocol = Ogc_server.Protocol

(* Registration happens once, at module init, like production code. *)
let m_hist =
  Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0; 8.0 |] "test_obs_hist"

let m_ctr = Metrics.counter "test_obs_events_total"
let m_g = Metrics.gauge "test_obs_level"

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

(* --- gating ---------------------------------------------------------------- *)

let test_disabled_is_noop () =
  Metrics.reset ();
  Metrics.set_enabled false;
  Metrics.incr m_ctr;
  Metrics.observe m_hist 1.5;
  Alcotest.(check (float 0.0)) "counter untouched" 0.0
    (Metrics.counter_value m_ctr);
  let counts, sum = Metrics.histogram_counts m_hist in
  Alcotest.(check (float 0.0)) "hist sum untouched" 0.0 sum;
  Alcotest.(check (float 0.0)) "hist counts untouched" 0.0
    (Array.fold_left ( +. ) 0.0 counts);
  (* Gauges track levels regardless of the flag, so paired add/sub pairs
     never drift across an enable/disable flip. *)
  Metrics.gauge_add m_g 3;
  Metrics.gauge_add m_g (-1);
  Alcotest.(check int) "gauge live while disabled" 2 (Metrics.gauge_value m_g)

(* --- merge = Σ shards under multi-domain recording ------------------------- *)

(* Split [xs] into [n] round-robin chunks. *)
let chunks n xs =
  let buckets = Array.make n [] in
  List.iteri (fun i x -> buckets.(i mod n) <- x :: buckets.(i mod n)) xs;
  Array.to_list buckets

let record_across_domains jobs obs =
  with_metrics (fun () ->
      (match chunks jobs obs with
      | [] -> ()
      | main :: rest ->
        let ds =
          List.map
            (fun chunk ->
              Domain.spawn (fun () ->
                  List.iter (fun v -> Metrics.observe m_hist v) chunk))
            rest
        in
        (* The main domain records too: its shard must merge with the
           workers'. *)
        List.iter (fun v -> Metrics.observe m_hist v) main;
        List.iter Domain.join ds);
      let merged, sum = Metrics.histogram_counts m_hist in
      let shards = Metrics.histogram_shards m_hist in
      (merged, sum, shards))

let prop_merge_is_shard_sum jobs =
  QCheck.Test.make
    ~name:(Printf.sprintf "histogram merge = sum of shards (jobs %d)" jobs)
    ~count:(if jobs >= 8 then 10 else 25)
    QCheck.(list_of_size Gen.(0 -- 200) (map float_of_int (0 -- 12)))
    (fun obs ->
      let merged, sum, shards = record_across_domains jobs obs in
      let total = Array.fold_left ( +. ) 0.0 merged in
      (* Every observation landed in exactly one merged bucket... *)
      total = float_of_int (List.length obs)
      && sum = List.fold_left ( +. ) 0.0 obs
      (* ... and the merged view is exactly the element-wise shard sum. *)
      && Array.for_all
           (fun ok -> ok)
           (Array.mapi
              (fun i m ->
                m
                = List.fold_left (fun acc s -> acc +. s.(i)) 0.0 shards)
              merged))

(* --- Prometheus exposition ------------------------------------------------- *)

let name_ok s =
  s <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
               | _ -> false)
       s

(* One sample line: name, optional {labels}, a space, a float value. *)
let line_ok line =
  match String.rindex_opt line ' ' with
  | None -> false
  | Some sp ->
    let head = String.sub line 0 sp in
    let value = String.sub line (sp + 1) (String.length line - sp - 1) in
    Float.is_finite (float_of_string value)
    && (match String.index_opt head '{' with
       | None -> name_ok head
       | Some lb ->
         String.length head > 0
         && head.[String.length head - 1] = '}'
         && name_ok (String.sub head 0 lb))

let test_exposition_format () =
  with_metrics (fun () ->
      Metrics.incr m_ctr;
      Metrics.gauge_set m_g 7;
      List.iter (Metrics.observe m_hist) [ 0.5; 3.0; 100.0 ];
      let text = Metrics.to_prometheus () in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) "has lines" true (lines <> []);
      List.iter
        (fun l ->
          Alcotest.(check bool) (Printf.sprintf "line %S well-formed" l) true
            (line_ok l))
        lines;
      let has sub =
        List.exists
          (fun l -> String.length l >= String.length sub
                    && String.sub l 0 (String.length sub) = sub)
          lines
      in
      Alcotest.(check bool) "counter present" true (has "test_obs_events_total");
      Alcotest.(check bool) "+Inf bucket present" true
        (List.exists
           (fun l ->
             has "test_obs_hist_bucket"
             && String.length l > 0
             &&
             match String.index_opt l '{' with
             | Some _ -> true
             | None -> false)
           lines);
      (* Histogram buckets are cumulative and end at the total count. *)
      let counts, _ = Metrics.histogram_counts m_hist in
      Alcotest.(check (float 0.0)) "3 observations" 3.0
        (Array.fold_left ( +. ) 0.0 counts);
      let value_of prefix =
        match
          List.find_opt
            (fun l ->
              String.length l > String.length prefix
              && String.sub l 0 (String.length prefix) = prefix)
            lines
        with
        | Some l ->
          float_of_string
            (String.sub l
               (String.rindex l ' ' + 1)
               (String.length l - String.rindex l ' ' - 1))
        | None -> Alcotest.failf "no %s line" prefix
      in
      (* The +Inf bucket and _count both equal the total — this is the
         regression test for cumulative rendering. *)
      Alcotest.(check (float 0.0)) "+Inf bucket = total" 3.0
        (value_of "test_obs_hist_bucket{le=\"+Inf\"}");
      Alcotest.(check (float 0.0)) "_count = total" 3.0
        (value_of "test_obs_hist_count");
      (* 0.5 <= 1.0: the first bucket already holds one observation. *)
      Alcotest.(check (float 0.0)) "first bucket cumulative" 1.0
        (value_of "test_obs_hist_bucket{le=\"1.0\"}"))

(* --- trace export ---------------------------------------------------------- *)

let test_trace_export () =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) @@ fun () ->
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner" ~args:[ ("k", J.Int 1) ] (fun () -> ());
      Span.instant "tick");
  (try Span.with_ ~name:"raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  let doc = Span.export () in
  let events =
    match J.member "traceEvents" doc with
    | J.Arr evs -> evs
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  let phases =
    List.filter_map
      (fun e ->
        match (J.member "ph" e, J.member "name" e) with
        | J.Str ph, J.Str name -> Some (ph, name)
        | _ -> None)
      events
  in
  let count ph = List.length (List.filter (fun (p, _) -> p = ph) phases) in
  (* 3 with_ calls: begins and ends balance even across the exception. *)
  Alcotest.(check int) "begin events" 3 (count "B");
  Alcotest.(check int) "end events" 3 (count "E");
  Alcotest.(check int) "instant events" 1 (count "i");
  Alcotest.(check bool) "thread metadata" true (count "M" >= 1);
  (* Timestamps are sorted, so viewers never reorder. *)
  let ts =
    List.filter_map
      (fun e ->
        match (J.member "ph" e, J.member "ts" e) with
        | J.Str "M", _ -> None
        | _, J.Int t -> Some t
        | _, J.Float t -> Some (int_of_float t)
        | _ -> None)
      events
  in
  Alcotest.(check bool) "timestamps sorted" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length ts - 1) ts)
       (List.tl ts));
  Span.reset ()

(* --- span ids, context, drop accounting ------------------------------------ *)

let span_ids_of doc =
  let events =
    match J.member "traceEvents" doc with J.Arr evs -> evs | _ -> []
  in
  List.filter_map
    (fun e ->
      match (J.member "ph" e, J.member "args" e) with
      | J.Str "B", args -> (
        match J.member "span_id" args with J.Int i -> Some (e, i) | _ -> None)
      | _ -> None)
    events

let test_span_ids_and_context () =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false; Span.reset ())
  @@ fun () ->
  Span.with_context (Some { Span.trace = "t-ctx"; parent = 7 }) (fun () ->
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"inner" (fun () -> ())));
  let spans = span_ids_of (Span.export ()) in
  let ids = List.map snd spans in
  Alcotest.(check int) "two spans" 2 (List.length ids);
  Alcotest.(check bool) "span ids unique" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  let arg_of name k =
    match
      List.find_opt
        (fun (e, _) -> J.member "name" e = J.Str name)
        spans
    with
    | Some (e, _) -> J.member k (J.member "args" e)
    | None -> Alcotest.failf "no span %s" name
  in
  Alcotest.(check bool) "outer carries trace id" true
    (arg_of "outer" "trace_id" = J.Str "t-ctx");
  Alcotest.(check bool) "outer nests under ambient parent" true
    (arg_of "outer" "parent_span" = J.Int 7);
  (* The inner span's parent is the outer span's own id: with_ rebinds
     the ambient parent for its children. *)
  let outer_sid = arg_of "outer" "span_id" in
  Alcotest.(check bool) "inner nests under outer" true
    (arg_of "inner" "parent_span" = outer_sid)

let test_span_drop_accounting () =
  Span.reset ();
  with_metrics @@ fun () ->
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false; Span.reset ())
  @@ fun () ->
  let cap = 1 lsl 15 in
  (* 2 events per span: overflow one thread's ring deterministically. *)
  let spans = (cap / 2) + 500 in
  for _ = 1 to spans do
    Span.with_ ~name:"spin" (fun () -> ())
  done;
  let dropped = Span.dropped_events () in
  Alcotest.(check int) "dropped = total - capacity" ((2 * spans) - cap) dropped;
  (match J.member "dropped_events" (Span.export ()) with
  | J.Int n -> Alcotest.(check int) "export reports drops" dropped n
  | _ -> Alcotest.fail "no dropped_events member");
  let expo = Metrics.to_prometheus () in
  Alcotest.(check bool) "drop counter exported" true
    (List.exists
       (fun l ->
         String.length l > 22
         && String.sub l 0 22 = "ogc_span_dropped_total"
         && float_of_string
              (String.sub l
                 (String.rindex l ' ' + 1)
                 (String.length l - String.rindex l ' ' - 1))
            = float_of_int dropped)
       (String.split_on_char '\n' expo))

(* --- merged fleet traces are well-formed ------------------------------------ *)

(* Build per-process export documents with the real recorder (reset
   between "processes"), cross-linked by wire flow ids, then merge. *)
let build_fleet_docs ~procs ~flows =
  let trace = "t-merge" in
  List.init procs (fun pi ->
      Span.reset ();
      Span.set_enabled true;
      Span.with_context (Some { Span.trace; parent = 0 }) (fun () ->
          for f = 1 to flows do
            let id = Span.wire_flow_id ~trace ~parent:f in
            Span.with_ ~name:(Printf.sprintf "edge%d" f) (fun () ->
                (* process 0 starts every flow; process 1 finishes it. *)
                if pi = 0 then Span.flow_out ~id
                else if pi = 1 then Span.flow_in ~id)
          done);
      let doc = Span.export () in
      Span.set_enabled false;
      Span.reset ();
      (Printf.sprintf "proc%d" pi, doc))

let prop_merged_fleet_well_formed =
  QCheck.Test.make ~name:"merged fleet traces well-formed" ~count:30
    QCheck.(pair (1 -- 4) (0 -- 8))
    (fun (procs, flows) ->
      let merged = Span.merge_processes (build_fleet_docs ~procs ~flows) in
      let events =
        match J.member "traceEvents" merged with J.Arr e -> e | _ -> []
      in
      let pid_of e = match J.member "pid" e with J.Int p -> p | _ -> -1 in
      (* Every process got its own pid track with a name. *)
      let named_pids =
        List.filter_map
          (fun e ->
            match (J.member "ph" e, J.member "name" e) with
            | J.Str "M", J.Str "process_name" -> Some (pid_of e)
            | _ -> None)
          events
        |> List.sort_uniq compare
      in
      let flow_ids ph =
        List.filter_map
          (fun e ->
            if J.member "ph" e = J.Str ph then
              match J.member "id" e with J.Int i -> Some i | _ -> None
            else None)
          events
        |> List.sort_uniq compare
      in
      let outs = flow_ids "s" and ins = flow_ids "f" in
      let span_ids =
        List.filter_map
          (fun e ->
            if J.member "ph" e = J.Str "B" then
              match J.member "span_id" (J.member "args" e) with
              | J.Int i -> Some (pid_of e, i)
              | _ -> None
            else None)
          events
      in
      named_pids = List.init procs (fun i -> i + 1)
      (* Per-process span ids never collide after the merge. *)
      && List.length (List.sort_uniq compare span_ids)
         = List.length span_ids
      (* Each flow start resolves to a finish in the other process (and
         none dangle), whenever both endpoints exist. *)
      && (if procs >= 2 then outs = ins && List.length outs = flows
          else ins = []))

(* --- flight recorder -------------------------------------------------------- *)

module Flight = Ogc_obs.Flight

let flight_rec i =
  { Flight.f_id = Some (Printf.sprintf "r%d" i);
    f_trace = None;
    f_key = "";
    f_shard = "test";
    f_op = "analyze";
    f_queue_ms = 0.0;
    f_hedged = false;
    f_cache = "";
    f_outcome = "ok";
    f_ms = float_of_int i;
    f_ts = 0.0 }

let test_flight_ring_bounds () =
  Flight.reset ();
  Fun.protect ~finally:Flight.reset @@ fun () ->
  let n = Flight.capacity + 100 in
  for i = 0 to n - 1 do
    Flight.record (flight_rec i)
  done;
  let snap = Flight.snapshot () in
  Alcotest.(check int) "ring bounded" Flight.capacity (List.length snap);
  Alcotest.(check int) "total counts everything" n (Flight.total ());
  Alcotest.(check int) "dropped = overflow" 100 (Flight.dropped ());
  (* Oldest first, and exactly the newest [capacity] records retained. *)
  (match snap with
  | first :: _ ->
    Alcotest.(check (float 0.0)) "oldest retained" 100.0 first.Flight.f_ms
  | [] -> Alcotest.fail "empty snapshot");
  (match List.rev snap with
  | last :: _ ->
    Alcotest.(check (float 0.0)) "newest retained"
      (float_of_int (n - 1)) last.Flight.f_ms
  | [] -> Alcotest.fail "empty snapshot");
  Alcotest.(check bool) "ordering monotone" true
    (let ms = List.map (fun r -> r.Flight.f_ms) snap in
     List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length ms - 1) ms)
       (List.tl ms));
  match Flight.to_json_all () with
  | J.Obj _ as j ->
    Alcotest.(check bool) "payload totals" true
      (J.member "total" j = J.Int n && J.member "dropped" j = J.Int 100)
  | _ -> Alcotest.fail "bad flight payload"

let test_flight_slow_capture () =
  Flight.reset ();
  let lines = ref [] in
  Log.set_sink (fun l -> lines := l :: !lines);
  Fun.protect ~finally:(fun () ->
      Log.set_sink prerr_endline;
      Flight.reset ())
  @@ fun () ->
  Flight.set_slow_ms (Some 5.0);
  Flight.record (flight_rec 3);
  Alcotest.(check int) "fast request not captured" 0 (List.length !lines);
  Flight.record { (flight_rec 50) with f_trace = Some "t-slow" };
  match !lines with
  | [ line ] ->
    let j = J.of_string line in
    Alcotest.(check bool) "slow_request line" true
      (J.member "msg" j = J.Str "slow_request");
    Alcotest.(check bool) "carries trace id" true
      (J.member "trace_id" j = J.Str "t-slow");
    Alcotest.(check bool) "carries duration" true
      (J.member "ms" j = J.Float 50.0)
  | l -> Alcotest.failf "expected one capture, got %d" (List.length l)

(* --- structured logs ------------------------------------------------------- *)

let test_log_lines () =
  let lines = ref [] in
  Log.set_sink (fun l -> lines := l :: !lines);
  Fun.protect ~finally:(fun () ->
      Log.set_sink prerr_endline;
      Log.set_level Log.Info)
  @@ fun () ->
  Log.set_level Log.Info;
  Log.debug "dropped below threshold";
  Log.info "hello" ~fields:[ ("n", J.Int 3); ("who", J.Str "obs") ];
  Log.error "bad";
  Alcotest.(check int) "threshold drops debug" 2 (List.length !lines);
  List.iter
    (fun line ->
      let j = J.of_string line in
      (match J.member "ts" j with
      | J.Float _ | J.Int _ -> ()
      | _ -> Alcotest.fail "no ts");
      (match J.member "level" j with
      | J.Str ("info" | "error") -> ()
      | _ -> Alcotest.fail "bad level");
      match J.member "msg" j with
      | J.Str _ -> ()
      | _ -> Alcotest.fail "no msg")
    !lines;
  match List.rev !lines with
  | [ info; _ ] ->
    Alcotest.(check bool) "fields serialized" true
      (J.member "who" (J.of_string info) = J.Str "obs")
  | _ -> Alcotest.fail "expected two lines"

(* --- determinism: analyze is byte-identical with tracing on/off ------------ *)

let src =
  "long input_scale = 1;\n\
   int main() {\n\
  \  int n = 30 * (int)input_scale;\n\
  \  long s = 0;\n\
  \  for (int i = 0; i < n; i++) s += (i & 63) * 5;\n\
  \  emit(s);\n\
  \  return 0;\n\
   }\n"

let req pass =
  {
    Protocol.id = None;
    payload = Protocol.Source src;
    input = Ogc_workloads.Workload.Train;
    pass;
    policy = Ogc_gating.Policy.Software;
    cost = 50;
    deadline_ms = None;
    return_program = true;
    trace_id = None;
    parent_span = None;
  }

let test_analyze_identical_with_tracing () =
  List.iter
    (fun pass ->
      Metrics.reset ();
      Span.reset ();
      Metrics.set_enabled false;
      Span.set_enabled false;
      let off = J.to_string (Protocol.analyze (req pass)) in
      Metrics.set_enabled true;
      Span.set_enabled true;
      let on = J.to_string (Protocol.analyze (req pass)) in
      (* A live trace context changes what the spans record, never the
         payload. *)
      let ctx = J.to_string
          (Span.with_context (Some { Span.trace = "t-det"; parent = 9 })
             (fun () -> Protocol.analyze (req pass)))
      in
      Metrics.set_enabled false;
      Span.set_enabled false;
      let off2 = J.to_string (Protocol.analyze (req pass)) in
      Span.reset ();
      Alcotest.(check string)
        (Printf.sprintf "pass %s: on = off" (Protocol.pass_name pass))
        off on;
      Alcotest.(check string)
        (Printf.sprintf "pass %s: traced ctx = off" (Protocol.pass_name pass))
        off ctx;
      Alcotest.(check string)
        (Printf.sprintf "pass %s: off again = off" (Protocol.pass_name pass))
        off off2)
    [ Protocol.P_vrp; Protocol.P_vrs ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ("gating", [ Alcotest.test_case "disabled is no-op" `Quick
                     test_disabled_is_noop ]);
      ( "shards",
        List.map (fun j -> q (prop_merge_is_shard_sum j)) [ 1; 2; 8 ] );
      ( "exposition",
        [ Alcotest.test_case "format" `Quick test_exposition_format ] );
      ("trace", [ Alcotest.test_case "export" `Quick test_trace_export ]);
      ( "spans",
        [ Alcotest.test_case "ids and ambient context" `Quick
            test_span_ids_and_context;
          Alcotest.test_case "drop accounting" `Quick
            test_span_drop_accounting;
          q prop_merged_fleet_well_formed ] );
      ( "flight",
        [ Alcotest.test_case "ring bounds and ordering" `Quick
            test_flight_ring_bounds;
          Alcotest.test_case "slow-request auto-capture" `Quick
            test_flight_slow_capture ] );
      ("log", [ Alcotest.test_case "ndjson lines" `Quick test_log_lines ]);
      ( "determinism",
        [ Alcotest.test_case "analyze byte-identical" `Quick
            test_analyze_identical_with_tracing ] );
    ]
