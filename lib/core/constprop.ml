open Ogc_isa
open Ogc_ir

type stats = {
  folded_to_const : int;
  folded_operands : int;
  folded_branches : int;
  removed : int;
  removed_iids : int list;
}

(* Immediates in operate instructions are halfword-sized, as in the code
   generator. *)
let fits_imm v = Int64.compare v (-32768L) >= 0 && Int64.compare v 32767L <= 0

let const_of res iid =
  match Vrp.range_of res iid with
  | Some rng -> Interval.is_const rng
  | None -> None

(* The range of [src] at the end of [b]'s body, when determined by a def
   inside the block. *)
let const_at_block_end res (b : Prog.block) src =
  let n = Array.length b.body in
  let rec last_def i =
    if i < 0 then None
    else if List.exists (Reg.equal src) (Instr.defs b.body.(i).op) then Some i
    else last_def (i - 1)
  in
  match last_def (n - 1) with
  | None -> None
  | Some i -> (
    match b.body.(i).op with
    | Instr.Call _ -> None
    | _ -> const_of res b.body.(i).iid)

let fold_instructions res (f : Prog.func) stats =
  Prog.iter_ins f (fun _ ins ->
      match ins.op with
      | Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _ | Instr.Sext _
        -> (
        match const_of res ins.iid with
        | Some c ->
          let dst =
            match Instr.defs ins.op with [ d ] -> Some d | _ -> None
          in
          (match dst with
          | Some dst ->
            ins.op <- Instr.Li { dst; imm = c };
            stats := { !stats with folded_to_const = !stats.folded_to_const + 1 }
          | None -> ())
        | None -> (
          (* Fold a constant register operand into an immediate. *)
          match (ins.op, Vrp.input_ranges_of res ins.iid) with
          | Instr.Alu ({ src2 = Instr.Reg _; _ } as r), Some (_, brng) -> (
            match Interval.is_const brng with
            | Some c when fits_imm c ->
              ins.op <- Instr.Alu { r with src2 = Instr.Imm c };
              stats :=
                { !stats with folded_operands = !stats.folded_operands + 1 }
            | Some _ | None -> ())
          | Instr.Cmp ({ src2 = Instr.Reg _; _ } as r), Some (_, brng) -> (
            match Interval.is_const brng with
            | Some c when fits_imm c ->
              ins.op <- Instr.Cmp { r with src2 = Instr.Imm c };
              stats :=
                { !stats with folded_operands = !stats.folded_operands + 1 }
            | Some _ | None -> ())
          | _ -> ()))
      | Instr.Li _ | Instr.La _ | Instr.Load _ | Instr.Store _ | Instr.Call _
      | Instr.Emit _ -> ())

let fold_branches res (f : Prog.func) stats =
  Array.iter
    (fun (b : Prog.block) ->
      match b.term with
      | Prog.Branch { cond; src; if_true; if_false } -> (
        let known =
          if Reg.equal src Reg.zero then Some 0L
          else const_at_block_end res b src
        in
        match known with
        | Some v ->
          let target = if Instr.eval_cond cond v then if_true else if_false in
          b.term <- Prog.Jump target;
          stats := { !stats with folded_branches = !stats.folded_branches + 1 }
        | None -> ())
      | Prog.Jump _ | Prog.Return -> ())
    f.blocks

let is_pure = function
  | Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _ | Instr.Sext _
  | Instr.Li _ | Instr.La _ | Instr.Load _ -> true
  | Instr.Store _ | Instr.Call _ | Instr.Emit _ -> false

(* Remove pure instructions none of whose definitions are ever used.  The
   stack pointer and the return-value register are live across function
   boundaries and never removable; neither are the epilogue loads that
   restore callee-saved registers from the callee-save area — they have no
   in-function uses but implement the calling convention.  The check is
   structural (a 64-bit sp-relative load of a callee-saved register), not
   positional: VRS may split the epilogue block, leaving the restores in a
   block that no longer ends in Return, and the register allocator places
   the callee-save area above a frame's spill slots, so no fixed offset
   window identifies it.  The conservatism costs at most a dead spill
   reload whose slot was colored callee-saved.  Other defs of callee-saved
   registers are removable because the allocator always restores every
   callee-saved register it uses. *)
let is_restore_load (ins : Prog.ins) =
  match ins.op with
  | Instr.Load { base; offset; width = Width.W64; dst; _ } ->
    Reg.equal base Reg.sp
    && Int64.compare offset 0L >= 0
    && List.exists (Reg.equal dst) Reg.callee_saved
  | _ -> false

let dce (f : Prog.func) stats =
  let changed = ref true in
  let guard = ref 0 in
  while !changed && !guard < 10 do
    changed := false;
    incr guard;
    let cfg = Cfg.of_func f in
    let ud = Usedef.compute f cfg in
    Array.iter
      (fun (b : Prog.block) ->
        let keep =
          Array.to_list b.body
          |> List.filter (fun (ins : Prog.ins) ->
                 let dead =
                   is_pure ins.op
                   && (not (is_restore_load ins))
                   && (not
                         (List.exists
                            (fun r ->
                              Reg.equal r Reg.sp || Reg.equal r Reg.ret)
                            (Instr.defs ins.op)))
                   && List.for_all
                        (fun di -> Usedef.uses_of_def ud di = [])
                        (Usedef.defs_of_ins ud ins.iid)
                   && Usedef.defs_of_ins ud ins.iid <> []
                 in
                 if dead then begin
                   stats :=
                     {
                       !stats with
                       removed = !stats.removed + 1;
                       removed_iids = ins.iid :: !stats.removed_iids;
                     };
                   changed := true
                 end;
                 not dead)
        in
        if List.length keep <> Array.length b.body then
          b.body <- Array.of_list keep)
      f.blocks
  done

let run res (p : Prog.t) =
  let stats =
    ref
      {
        folded_to_const = 0;
        folded_operands = 0;
        folded_branches = 0;
        removed = 0;
        removed_iids = [];
      }
  in
  List.iter
    (fun f ->
      fold_instructions res f stats;
      fold_branches res f stats;
      dce f stats)
    p.funcs;
  !stats
