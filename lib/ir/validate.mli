(** Structural well-formedness checks for programs.

    Run after code generation and after every transformation; raises
    [Invalid of message] describing the first violation found. *)

exception Invalid of string

val func : ?allow_virtual:bool -> Prog.t -> Prog.func -> unit
val program : ?allow_virtual:bool -> Prog.t -> unit
(** Checks: labels in range and consistent with block positions; branch
    targets exist; instruction ids unique program-wide; calls name defined
    functions or known intrinsics; arity within register-argument limits;
    [Reg.zero] never used as a destination of a meaningful def; frame sizes
    non-negative and 8-byte aligned; no virtual registers remain unless
    [allow_virtual] is set (pre-allocation programs only). *)
