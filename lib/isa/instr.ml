type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Bic
  | Sll
  | Srl
  | Sra

type cmp_op = Ceq | Clt | Cle | Cult | Cule

type cond = Eq | Ne | Lt | Le | Gt | Ge

type operand = Reg of Reg.t | Imm of int64

type t =
  | Alu of { op : alu_op; width : Width.t; src1 : Reg.t; src2 : operand; dst : Reg.t }
  | Cmp of { op : cmp_op; width : Width.t; src1 : Reg.t; src2 : operand; dst : Reg.t }
  | Cmov of { cond : cond; width : Width.t; test : Reg.t; src : operand; dst : Reg.t }
  | Msk of { width : Width.t; src : Reg.t; dst : Reg.t }
  | Sext of { width : Width.t; src : Reg.t; dst : Reg.t }
  | Li of { dst : Reg.t; imm : int64 }
  | La of { dst : Reg.t; symbol : string }
  | Load of { width : Width.t; signed : bool; base : Reg.t; offset : int64; dst : Reg.t }
  | Store of { width : Width.t; base : Reg.t; offset : int64; src : Reg.t }
  | Call of { callee : string }
  | Emit of { src : Reg.t }

let defs = function
  | Alu { dst; _ } | Cmp { dst; _ } | Cmov { dst; _ }
  | Msk { dst; _ } | Sext { dst; _ } | Li { dst; _ } | La { dst; _ }
  | Load { dst; _ } -> [ dst ]
  | Store _ | Emit _ -> []
  | Call _ -> Reg.caller_saved

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let uses = function
  | Alu { src1; src2; _ } | Cmp { src1; src2; _ } ->
    src1 :: operand_uses src2
  | Cmov { test; src; dst; _ } ->
    (* the old dst value survives when the move does not fire *)
    test :: dst :: operand_uses src
  | Msk { src; _ } | Sext { src; _ } -> [ src ]
  | Li _ | La _ -> []
  | Load { base; _ } -> [ base ]
  | Store { base; src; _ } -> [ base; src ]
  | Call _ -> List.init Reg.num_arg_regs Reg.arg
  | Emit { src } -> [ src ]

let map_operand f = function Reg r -> Reg (f r) | Imm _ as o -> o

let map_regs f = function
  | Alu r -> Alu { r with src1 = f r.src1; src2 = map_operand f r.src2; dst = f r.dst }
  | Cmp r -> Cmp { r with src1 = f r.src1; src2 = map_operand f r.src2; dst = f r.dst }
  | Cmov r ->
    Cmov { r with test = f r.test; src = map_operand f r.src; dst = f r.dst }
  | Msk r -> Msk { r with src = f r.src; dst = f r.dst }
  | Sext r -> Sext { r with src = f r.src; dst = f r.dst }
  | Li r -> Li { r with dst = f r.dst }
  | La r -> La { r with dst = f r.dst }
  | Load r -> Load { r with base = f r.base; dst = f r.dst }
  | Store r -> Store { r with base = f r.base; src = f r.src }
  | Call _ as i -> i
  | Emit r -> Emit { src = f r.src }

let is_call = function Call _ -> true | _ -> false

let is_mem = function
  | Load _ | Store _ -> true
  | Alu _ | Cmp _ | Cmov _ | Msk _ | Sext _ | Li _ | La _ | Call _ | Emit _ ->
    false

let width = function
  | Alu { width; _ } | Cmp { width; _ } | Cmov { width; _ }
  | Msk { width; _ } | Sext { width; _ }
  | Load { width; _ } | Store { width; _ } -> width
  | Li _ | La _ | Call _ | Emit _ -> Width.W64

let with_width i w =
  match i with
  | Alu r -> Alu { r with width = w }
  | Cmp r -> Cmp { r with width = w }
  | Cmov r -> Cmov { r with width = w }
  | Msk r -> Msk { r with width = w }
  | Sext r -> Sext { r with width = w }
  | Load r -> Load { r with width = w }
  | Store r -> Store { r with width = w }
  | Li _ | La _ | Call _ | Emit _ -> i

type iclass =
  | C_add | C_sub | C_mul | C_and | C_or | C_xor
  | C_shift | C_cmp | C_cmov | C_msk
  | C_load | C_store | C_move | C_call | C_other

let iclass = function
  | Alu { op = Add; _ } -> C_add
  | Alu { op = Sub; _ } -> C_sub
  | Alu { op = Mul | Div | Rem; _ } -> C_mul
  | Alu { op = And | Bic; _ } -> C_and
  | Alu { op = Or; _ } -> C_or
  | Alu { op = Xor; _ } -> C_xor
  | Alu { op = Sll | Srl | Sra; _ } -> C_shift
  | Cmp _ -> C_cmp
  | Cmov _ -> C_cmov
  | Msk _ | Sext _ -> C_msk
  | Load _ -> C_load
  | Store _ -> C_store
  | Li _ | La _ -> C_move
  | Call _ -> C_call
  | Emit _ -> C_other

let iclass_name = function
  | C_add -> "ADD"
  | C_sub -> "SUB"
  | C_mul -> "MUL"
  | C_and -> "AND"
  | C_or -> "OR"
  | C_xor -> "XOR"
  | C_shift -> "SHIFT"
  | C_cmp -> "CMP"
  | C_cmov -> "CMOV"
  | C_msk -> "MSK"
  | C_load -> "LOAD"
  | C_store -> "STORE"
  | C_move -> "MOVE"
  | C_call -> "CALL"
  | C_other -> "OTHER"

let all_alu_classes =
  [ C_add; C_msk; C_cmp; C_shift; C_sub; C_and; C_or; C_xor; C_cmov; C_mul ]

(* Evaluation.  A width-[w] operation computes on the low [w] bits and
   sign-extends the result; this is the single place where the narrow
   semantics is defined, shared by the interpreter and the analyses. *)

let eval_alu op w a b =
  let a = Width.truncate a w and b = Width.truncate b w in
  let shift_amount b = Int64.to_int (Int64.logand b 63L) in
  let r =
    match op with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Div ->
      (* x/0 = 0 and min_int/-1 wraps to itself: total, trap-free division *)
      if b = 0L then 0L
      else if a = Int64.min_int && b = -1L then a
      else Int64.div a b
    | Rem ->
      if b = 0L then 0L
      else if a = Int64.min_int && b = -1L then 0L
      else Int64.rem a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Bic -> Int64.logand a (Int64.lognot b)
    | Sll -> Int64.shift_left a (shift_amount b)
    | Srl ->
      (* logical shift over the operation width: zero-fill from bit [w] *)
      Int64.shift_right_logical (Width.truncate_unsigned a w) (shift_amount b)
    | Sra -> Int64.shift_right a (shift_amount b)
  in
  Width.truncate r w

let eval_cmp op w a b =
  let a = Width.truncate a w and b = Width.truncate b w in
  let holds =
    match op with
    | Ceq -> Int64.equal a b
    | Clt -> Int64.compare a b < 0
    | Cle -> Int64.compare a b <= 0
    | Cult -> Int64.unsigned_compare a b < 0
    | Cule -> Int64.unsigned_compare a b <= 0
  in
  if holds then 1L else 0L

let eval_cond c v =
  match c with
  | Eq -> Int64.equal v 0L
  | Ne -> not (Int64.equal v 0L)
  | Lt -> Int64.compare v 0L < 0
  | Le -> Int64.compare v 0L <= 0
  | Gt -> Int64.compare v 0L > 0
  | Ge -> Int64.compare v 0L >= 0

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Bic -> "bic"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"

let cmp_op_name = function
  | Ceq -> "cmpeq"
  | Clt -> "cmplt"
  | Cle -> "cmple"
  | Cult -> "cmpult"
  | Cule -> "cmpule"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Format.fprintf ppf "#%Ld" i

let width_suffix w = if Width.equal w Width.W64 then "" else Width.to_string w

let pp ppf i =
  let f fmt = Format.fprintf ppf fmt in
  match i with
  | Alu { op; width; src1; src2; dst } ->
    f "%s%s %a, %a, %a" (alu_op_name op) (width_suffix width) Reg.pp src1
      pp_operand src2 Reg.pp dst
  | Cmp { op; width; src1; src2; dst } ->
    f "%s%s %a, %a, %a" (cmp_op_name op) (width_suffix width) Reg.pp src1
      pp_operand src2 Reg.pp dst
  | Cmov { cond; width; test; src; dst } ->
    f "cmov%s%s %a, %a, %a" (cond_name cond) (width_suffix width) Reg.pp test
      pp_operand src Reg.pp dst
  | Msk { width; src; dst } ->
    f "msk%s %a, %a" (Width.to_string width) Reg.pp src Reg.pp dst
  | Sext { width; src; dst } ->
    f "sext%s %a, %a" (Width.to_string width) Reg.pp src Reg.pp dst
  | Li { dst; imm } -> f "li #%Ld, %a" imm Reg.pp dst
  | La { dst; symbol } -> f "la @%s, %a" symbol Reg.pp dst
  | Load { width; signed; base; offset; dst } ->
    f "ld%s%s %Ld(%a), %a" (Width.to_string width)
      (if signed || Width.equal width Width.W64 then "" else "u")
      offset Reg.pp base Reg.pp dst
  | Store { width; base; offset; src } ->
    f "st%s %a, %Ld(%a)" (Width.to_string width) Reg.pp src offset Reg.pp base
  | Call { callee } -> f "call %s" callee
  | Emit { src } -> f "emit %a" Reg.pp src

let to_string i = Format.asprintf "%a" pp i
