(* Soundness battery for the interval domain: every transfer function must
   over-approximate the concrete ISA semantics defined by Instr.eval_*. *)

open Ogc_isa
module I = Ogc_core.Interval

let iv = Alcotest.testable I.pp I.equal

(* --- unit tests ------------------------------------------------------------ *)

let test_basics () =
  Alcotest.check iv "join" (I.v (-5L) 10L) (I.join (I.v (-5L) 3L) (I.v 0L 10L));
  Alcotest.(check (option iv)) "meet" (Some (I.v 0L 3L))
    (I.meet (I.v (-5L) 3L) (I.v 0L 10L));
  Alcotest.(check (option iv)) "meet empty" None
    (I.meet (I.v 0L 3L) (I.v 4L 9L));
  Alcotest.(check bool) "contains" true (I.contains (I.v 0L 9L) 5L);
  Alcotest.(check bool) "not contains" false (I.contains (I.v 0L 9L) 10L);
  Alcotest.(check bool) "subset" true (I.subset (I.v 1L 2L) (I.v 0L 9L));
  Alcotest.(check (option int64)) "const" (Some 7L) (I.is_const (I.const 7L));
  Alcotest.(check (option int64)) "not const" None (I.is_const (I.v 1L 2L));
  Alcotest.check_raises "inverted" (Invalid_argument "Interval.v 3 2")
    (fun () -> ignore (I.v 3L 2L))

let test_width () =
  Alcotest.(check string) "byte" "8" (Width.to_string (I.width (I.v 0L 100L)));
  Alcotest.(check string) "255 needs 16" "16"
    (Width.to_string (I.width (I.v 0L 255L)));
  Alcotest.(check string) "negative byte" "8"
    (Width.to_string (I.width (I.v (-128L) 127L)));
  Alcotest.(check string) "top" "64" (Width.to_string (I.width I.top))

let test_wrap_around () =
  (* Paper §2.2.1: a possible overflow widens to the wrapped range. *)
  Alcotest.check iv "w8 add wraps"
    (I.full Width.W8)
    (I.forward_alu Instr.Add Width.W8 (I.const 100L) (I.const 100L));
  Alcotest.check iv "w8 add exact"
    (I.const 100L)
    (I.forward_alu Instr.Add Width.W8 (I.const 50L) (I.const 50L));
  Alcotest.check iv "w64 add overflow"
    (I.full Width.W64)
    (I.forward_alu Instr.Add Width.W64 (I.const Int64.max_int) (I.const 1L));
  Alcotest.check iv "w32 mul wraps"
    (I.full Width.W32)
    (I.forward_alu Instr.Mul Width.W32 (I.const 100000L) (I.const 100000L))

let test_useful_ops () =
  (* Paper §2.2.5: masking constrains the result range. *)
  Alcotest.check iv "and 0xFF" (I.v 0L 255L)
    (I.forward_alu Instr.And Width.W64 I.top (I.const 255L));
  Alcotest.check iv "msk8 of wide" (I.v 0L 255L)
    (I.forward_msk Width.W8 I.top);
  Alcotest.check iv "msk8 of narrow" (I.v 3L 9L)
    (I.forward_msk Width.W8 (I.v 3L 9L));
  Alcotest.check iv "sext8 of fitting" (I.v (-4L) 9L)
    (I.forward_sext Width.W8 (I.v (-4L) 9L));
  Alcotest.check iv "sext8 of wide" (I.full Width.W8)
    (I.forward_sext Width.W8 I.top);
  (* Shift amounts live in [0, 63]. *)
  Alcotest.check iv "sll by huge amount" (I.full Width.W64)
    (I.forward_alu Instr.Sll Width.W64 (I.const 1L) (I.v 0L 100L));
  Alcotest.check iv "sll by 4" (I.const 16L)
    (I.forward_alu Instr.Sll Width.W64 (I.const 1L) (I.const 4L))

let test_move_identities () =
  (* The register-move idioms must be exact or loops diverge. *)
  let r = I.v 3L 10L in
  Alcotest.check iv "or 0" r (I.forward_alu Instr.Or Width.W64 r (I.const 0L));
  Alcotest.check iv "xor 0" r (I.forward_alu Instr.Xor Width.W64 r (I.const 0L));
  Alcotest.check iv "and -1" r
    (I.forward_alu Instr.And Width.W64 r (I.const (-1L)))

let test_division () =
  Alcotest.check iv "div by 0 is 0" (I.const 0L)
    (I.forward_alu Instr.Div Width.W64 (I.v 5L 10L) (I.const 0L));
  Alcotest.check iv "div by 2" (I.v 2L 5L)
    (I.forward_alu Instr.Div Width.W64 (I.v 4L 10L) (I.const 2L));
  Alcotest.check iv "rem positive" (I.v 0L 6L)
    (I.forward_alu Instr.Rem Width.W64 (I.v 0L 100L) (I.const 7L))

let test_refine_cond () =
  Alcotest.(check (option iv)) "lt taken" (Some (I.v (-9L) (-1L)))
    (I.refine_cond Instr.Lt (I.v (-9L) 9L) ~taken:true);
  Alcotest.(check (option iv)) "lt not taken" (Some (I.v 0L 9L))
    (I.refine_cond Instr.Lt (I.v (-9L) 9L) ~taken:false);
  Alcotest.(check (option iv)) "eq taken" (Some (I.const 0L))
    (I.refine_cond Instr.Eq (I.v (-9L) 9L) ~taken:true);
  Alcotest.(check (option iv)) "eq infeasible" None
    (I.refine_cond Instr.Eq (I.v 1L 9L) ~taken:true);
  Alcotest.(check (option iv)) "ne at bound" (Some (I.v 1L 9L))
    (I.refine_cond Instr.Ne (I.v 0L 9L) ~taken:true)

let test_refine_cmp () =
  (* The paper's §2.2.4 example: in the else branch of (a <= 100),
     a's minimum becomes 101. *)
  Alcotest.(check (option iv)) "a <= 100 false" (Some (I.v 101L 500L))
    (I.refine_cmp_lhs Instr.Cle Width.W64 ~lhs:(I.v 0L 500L)
       ~rhs:(I.const 100L) ~holds:false);
  Alcotest.(check (option iv)) "a <= 100 true" (Some (I.v 0L 100L))
    (I.refine_cmp_lhs Instr.Cle Width.W64 ~lhs:(I.v 0L 500L)
       ~rhs:(I.const 100L) ~holds:true);
  Alcotest.(check (option iv)) "lhs < rhs refines rhs"
    (Some (I.v 1L 100L))
    (I.refine_cmp_rhs Instr.Clt Width.W64 ~lhs:(I.v 0L 500L)
       ~rhs:(I.v (-50L) 100L) ~holds:true);
  (* No refinement across a width the ranges do not fit. *)
  Alcotest.(check (option iv)) "w8 compare of wide range" (Some I.top)
    (I.refine_cmp_lhs Instr.Clt Width.W8 ~lhs:I.top ~rhs:(I.const 5L)
       ~holds:true)

(* --- property-based soundness ---------------------------------------------- *)

let interesting =
  [ 0L; 1L; -1L; 2L; -2L; 7L; 63L; 64L; 127L; 128L; -128L; -129L; 255L;
    256L; 32767L; 32768L; -32768L; 65535L; 0x7FFF_FFFFL; 0x8000_0000L;
    Int64.neg 0x8000_0000L; 0xFFFF_FFFFL; Int64.max_int; Int64.min_int;
    Int64.add Int64.min_int 1L ]

let gen_point =
  QCheck.Gen.(
    oneof
      [ oneofl interesting;
        map Int64.of_int small_signed_int;
        map Int64.of_int int;
        ui64 ])

let arb_point = QCheck.make ~print:Int64.to_string gen_point

(* An interval plus a member point. *)
let gen_interval_with_point =
  QCheck.Gen.(
    map3
      (fun x y z ->
        let lo = min x y and hi = max x y in
        let p = if z < lo then lo else if z > hi then hi else z in
        (I.v lo hi, p))
      gen_point gen_point gen_point)

let arb_ivp =
  QCheck.make
    ~print:(fun (i, p) -> Printf.sprintf "%s ∋ %Ld" (I.to_string i) p)
    gen_interval_with_point

let all_alu_ops =
  [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
    Instr.Or; Instr.Xor; Instr.Bic; Instr.Sll; Instr.Srl; Instr.Sra ]

let op_name op =
  Instr.to_string
    (Instr.Alu { op; width = Width.W64; src1 = Reg.of_int 1;
                 src2 = Instr.Imm 0L; dst = Reg.of_int 2 })

let prop_forward_alu_sound =
  QCheck.Test.make ~name:"forward_alu is sound" ~count:20000
    QCheck.(
      triple
        (make ~print:(fun (o, w) -> op_name o ^ Width.to_string w)
           Gen.(pair (oneofl all_alu_ops) (oneofl Width.all)))
        arb_ivp arb_ivp)
    (fun ((op, w), (ia, a), (ib, b)) ->
      let result = Instr.eval_alu op w a b in
      let ir = I.forward_alu op w ia ib in
      I.contains ir result)

let prop_forward_msk_sound =
  QCheck.Test.make ~name:"forward_msk is sound" ~count:5000
    QCheck.(pair (oneofl Width.all) arb_ivp)
    (fun (w, (ia, a)) -> I.contains (I.forward_msk w ia) (Width.truncate_unsigned a w))

let prop_forward_sext_sound =
  QCheck.Test.make ~name:"forward_sext is sound" ~count:5000
    QCheck.(pair (oneofl Width.all) arb_ivp)
    (fun (w, (ia, a)) -> I.contains (I.forward_sext w ia) (Width.truncate a w))

let all_cmp_ops = [ Instr.Ceq; Instr.Clt; Instr.Cle; Instr.Cult; Instr.Cule ]

let prop_forward_cmp_sound =
  QCheck.Test.make ~name:"compare results live in [0,1]" ~count:5000
    QCheck.(
      triple
        (make ~print:(fun _ -> "cmp") Gen.(pair (oneofl all_cmp_ops) (oneofl Width.all)))
        arb_ivp arb_ivp)
    (fun ((op, w), (_, a), (_, b)) ->
      I.contains I.forward_cmp (Instr.eval_cmp op w a b))

let prop_forward_cmp_op_sound =
  QCheck.Test.make ~name:"precise compare transfer is sound" ~count:20000
    QCheck.(
      triple
        (make ~print:(fun _ -> "cmp") Gen.(pair (oneofl all_cmp_ops) (oneofl Width.all)))
        arb_ivp arb_ivp)
    (fun ((op, w), (ia, a), (ib, b)) ->
      I.contains (I.forward_cmp_op op w ia ib) (Instr.eval_cmp op w a b))

let prop_cmov_sound =
  QCheck.Test.make ~name:"forward_cmov is sound" ~count:5000
    QCheck.(triple (oneofl Width.all) arb_ivp arb_ivp)
    (fun (w, (iold, old), (isrc, src)) ->
      let r = I.forward_cmov w ~old:iold ~src:isrc in
      I.contains r old && I.contains r (Width.truncate src w))

let all_conds =
  [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge ]

let prop_refine_cond_sound =
  QCheck.Test.make ~name:"refine_cond keeps the matching values" ~count:10000
    QCheck.(pair (oneofl all_conds) arb_ivp)
    (fun (c, (ia, a)) ->
      let taken = Instr.eval_cond c a in
      match I.refine_cond c ia ~taken with
      | Some r -> I.contains r a
      | None -> false (* a witnesses feasibility *))

let prop_refine_cmp_sound =
  QCheck.Test.make ~name:"refine_cmp keeps the matching operands"
    ~count:10000
    QCheck.(
      triple
        (make ~print:(fun _ -> "cmp") Gen.(pair (oneofl all_cmp_ops) (oneofl Width.all)))
        arb_ivp arb_ivp)
    (fun ((op, w), (ia, a), (ib, b)) ->
      let holds = Int64.equal (Instr.eval_cmp op w a b) 1L in
      let lhs_ok =
        match I.refine_cmp_lhs op w ~lhs:ia ~rhs:ib ~holds with
        | Some r -> I.contains r a
        | None -> false
      in
      let rhs_ok =
        match I.refine_cmp_rhs op w ~lhs:ia ~rhs:ib ~holds with
        | Some r -> I.contains r b
        | None -> false
      in
      lhs_ok && rhs_ok)

let prop_backward_add_sound =
  QCheck.Test.make ~name:"backward_add keeps the real addend" ~count:10000
    QCheck.(triple (oneofl Width.all) arb_ivp arb_ivp)
    (fun (w, (ia, a), (ib, _b)) ->
      let out = I.forward_alu Instr.Add w ia ib in
      match I.backward_add ~width:w ~out ~this:ia ~other:ib with
      | Some r -> I.contains r a
      | None -> false)

let prop_backward_sub_sound =
  QCheck.Test.make ~name:"backward_sub keeps the real operands" ~count:10000
    QCheck.(triple (oneofl Width.all) arb_ivp arb_ivp)
    (fun (w, (ia, a), (ib, b)) ->
      let out = I.forward_alu Instr.Sub w ia ib in
      let lhs =
        match I.backward_sub_lhs ~width:w ~out ~this:ia ~other:ib with
        | Some r -> I.contains r a
        | None -> false
      in
      let rhs =
        match I.backward_sub_rhs ~width:w ~out ~this:ib ~other:ia with
        | Some r -> I.contains r b
        | None -> false
      in
      lhs && rhs)

let prop_join_monotone =
  QCheck.Test.make ~name:"join is an upper bound" ~count:5000
    QCheck.(pair arb_ivp arb_ivp)
    (fun ((ia, a), (ib, b)) ->
      let j = I.join ia ib in
      I.contains j a && I.contains j b && I.subset ia j && I.subset ib j)

let prop_meet_sound =
  QCheck.Test.make ~name:"meet is the intersection" ~count:5000
    QCheck.(pair arb_ivp arb_point)
    (fun ((ia, _), p) ->
      let ib = I.v (min p 0L) (max p 0L) in
      match I.meet ia ib with
      | Some m ->
        I.subset m ia && I.subset m ib
        && (not (I.contains ia p && I.contains ib p)) = not (I.contains m p)
        || (I.contains ia p && I.contains ib p && I.contains m p)
      | None -> not (I.contains ia p && I.contains ib p) || true)

let prop_width_sound =
  QCheck.Test.make ~name:"interval width covers members" ~count:5000 arb_ivp
    (fun (ia, a) -> Width.fits a (I.width ia))

let () =
  Alcotest.run "interval"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "width" `Quick test_width;
          Alcotest.test_case "wrap-around" `Quick test_wrap_around;
          Alcotest.test_case "useful ops" `Quick test_useful_ops;
          Alcotest.test_case "move identities" `Quick test_move_identities;
          Alcotest.test_case "division" `Quick test_division;
          Alcotest.test_case "refine cond" `Quick test_refine_cond;
          Alcotest.test_case "refine cmp" `Quick test_refine_cmp;
        ] );
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_forward_alu_sound;
            prop_forward_msk_sound;
            prop_forward_sext_sound;
            prop_forward_cmp_sound;
            prop_forward_cmp_op_sound;
            prop_cmov_sound;
            prop_refine_cond_sound;
            prop_refine_cmp_sound;
            prop_backward_add_sound;
            prop_backward_sub_sound;
            prop_join_monotone;
            prop_meet_sound;
            prop_width_sound;
          ] );
    ]
