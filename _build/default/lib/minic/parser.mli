(** Recursive-descent parser for MiniC.

    Grammar summary (C subset):
    - top level: global scalar/array declarations and function definitions;
    - types: [char] (unsigned byte), [short], [int], [long], [void]
      (return type only), one-dimensional arrays, array/pointer parameters
      ([long v[]] or [long *v]);
    - statements: declarations, assignments ([=], [op=], [++], [--]),
      [if]/[else], [while], [do]/[while], [for], [break], [continue],
      [return], [emit(e)], expression statements;
    - expressions: C operator set with C precedence, [?:], casts, calls.

    Assignments are statements, not expressions. *)

exception Error of string * Ast.pos

val parse : string -> Ast.program
(** Raises {!Error} or {!Lexer.Error}. *)
