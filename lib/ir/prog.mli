(** Program representation: functions of basic blocks.

    This plays the role that Alto's internal representation plays in the
    paper: a binary-level control-flow-graph form on which the value-range
    passes operate and from which the interpreter and the timing model
    execute.

    Every instruction — including each block's terminator — carries a
    program-unique instruction id ([iid]).  Ids survive re-encoding (VRP
    width assignment mutates instructions in place) and are duplicated
    afresh when VRS clones a region, so profile data and analysis facts can
    be keyed by id. *)

open Ogc_isa

(** An instruction with its program-unique id. *)
type ins = { iid : int; mutable op : Instr.t }

type terminator =
  | Jump of Label.t
  | Branch of {
      cond : Instr.cond;
      src : Reg.t;
      if_true : Label.t;
      if_false : Label.t;
    }  (** Alpha-style conditional branch: test [src] against zero. *)
  | Return  (** return value, if any, is in [Reg.ret] *)

type block = {
  label : Label.t;
  mutable body : ins array;
  mutable term : terminator;
  term_iid : int;
}

type func = {
  fname : string;
  arity : int;  (** number of register arguments, at most [Reg.num_arg_regs] *)
  mutable blocks : block array;  (** [blocks.(0)] is the entry block *)
  frame_size : int;  (** stack frame size in bytes *)
}

(** An initialized global data object.  [init] is its little-endian image;
    its length is the object's size in bytes. *)
type global = { gname : string; init : Bytes.t }

type t = {
  mutable funcs : func list;
  globals : global list;
  mutable next_iid : int;
}

val create : ?globals:global list -> func list -> t
(** Numbers [next_iid] past every id already present. *)

val max_reg_of_func : func -> int
(** Highest register index named by any instruction or terminator of the
    function, at least [Reg.num_arch - 1].  Exceeds [Reg.num_arch - 1]
    only for pre-allocation programs that still use virtual registers. *)

val max_reg : t -> int
(** [max_reg_of_func] over every function; sizes dynamic register files. *)

val fresh_iid : t -> int

val copy : t -> t
(** Deep copy: instruction ids, labels and global images are preserved,
    and no mutable state is shared, so transforming the copy in place
    never disturbs the original.  The experiment harness uses this to
    compile each workload once and hand every binary-version task its own
    private program. *)

val find_func : t -> string -> func
(** Raises [Not_found]. *)

val find_func_opt : t -> string -> func option
val find_global : t -> string -> global option

val block : func -> Label.t -> block

val append_block : func -> body:ins array -> term:terminator -> term_iid:int -> Label.t
(** Adds a new block at the end of [blocks] and returns its label. *)

(** {1 Iteration} *)

val iter_blocks : func -> (block -> unit) -> unit
val iter_ins : func -> (block -> ins -> unit) -> unit
val iter_all_ins : t -> (func -> block -> ins -> unit) -> unit

val num_static_ins : t -> int
(** Static instruction count including terminators. *)

(** {1 Instruction lookup} *)

val ins_table : t -> (int, func * block * ins) Hashtbl.t
(** Index from iid to its definition site (body instructions only). *)

(** {1 Printing} *)

val pp_terminator : Format.formatter -> terminator -> unit
val pp_func : Format.formatter -> func -> unit
val pp : Format.formatter -> t -> unit
