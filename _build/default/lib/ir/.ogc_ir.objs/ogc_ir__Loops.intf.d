lib/ir/loops.mli: Cfg Dom Label
