(** Analyzer version, generated at build time from the [(version ...)]
    field of [dune-project].  Stamped into [ogc --version], into every
    server response, and into every cache key, so clients and cached
    artifacts can detect analyzer-version skew. *)

val version : string
