module J = Ogc_json.Json
module Server = Ogc_server.Server
module Protocol = Ogc_server.Protocol
module Version = Ogc_server.Version
module Metrics = Ogc_obs.Metrics
module Log = Ogc_obs.Log
module Span = Ogc_obs.Span
module Flight = Ogc_obs.Flight

type target = { t_name : string; t_addr : Server.addr }

type config = {
  addr : Server.addr;
  shards : target list;
  vnodes : int;
  pool_size : int;
  max_waiters : int;
  replicas : int;
  promote_after : int;
  hedge_ms : float option;
  connect_timeout_ms : int;
  request_timeout_ms : int;
}

let default_config ~addr ~shards =
  { addr;
    shards;
    vnodes = 128;
    pool_size = 8;
    max_waiters = 64;
    replicas = 2;
    promote_after = 3;
    hedge_ms = None;
    connect_timeout_ms = 1000;
    request_timeout_ms = 30_000 }

let sockaddr_of = function
  | Server.Unix_sock path -> Unix.ADDR_UNIX path
  | Server.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> Fmt.failwith "cannot resolve %s" host
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> Fmt.failwith "cannot resolve %s" host)
    in
    Unix.ADDR_INET (ip, port)

(* --- bounded per-shard connection pools ------------------------------------ *)

exception Backpressure

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

module Conns = struct
  type t = {
    addr : Server.addr;
    size : int;
    max_waiters : int;
    connect_timeout_ms : int;
    m : Mutex.t;
    cond : Condition.t;
    mutable idle : conn list;
    mutable live : int;  (* connections opened and not yet destroyed *)
    mutable waiters : int;
  }

  let create ~size ~max_waiters ~connect_timeout_ms addr =
    { addr;
      size = max 1 size;
      max_waiters = max 0 max_waiters;
      connect_timeout_ms;
      m = Mutex.create ();
      cond = Condition.create ();
      idle = [];
      live = 0;
      waiters = 0 }

  (* Non-blocking connect bounded by the configured timeout, so a dead
     TCP shard costs milliseconds, not a kernel-default SYN retry. *)
  let connect t =
    let domain =
      match t.addr with
      | Server.Unix_sock _ -> Unix.PF_UNIX
      | Server.Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    try
      Unix.set_nonblock fd;
      (try Unix.connect fd (sockaddr_of t.addr) with
      | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
        let dt = float_of_int t.connect_timeout_ms /. 1000.0 in
        match Unix.select [] [ fd ] [] dt with
        | _, [ _ ], _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some e -> raise (Unix.Unix_error (e, "connect", "")))
        | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))));
      Unix.clear_nonblock fd;
      { fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd }
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

  let acquire t =
    Mutex.lock t.m;
    let rec get () =
      match t.idle with
      | c :: rest ->
        t.idle <- rest;
        Mutex.unlock t.m;
        c
      | [] ->
        if t.live < t.size then begin
          t.live <- t.live + 1;
          Mutex.unlock t.m;
          (* Connect outside the lock; a slow handshake must not block
             other acquires that could use an idle connection. *)
          try connect t
          with e ->
            Mutex.lock t.m;
            t.live <- t.live - 1;
            Condition.signal t.cond;
            Mutex.unlock t.m;
            raise e
        end
        else if t.waiters >= t.max_waiters then begin
          Mutex.unlock t.m;
          raise Backpressure
        end
        else begin
          t.waiters <- t.waiters + 1;
          Condition.wait t.cond t.m;
          t.waiters <- t.waiters - 1;
          get ()
        end
    in
    get ()

  let release t c =
    Mutex.lock t.m;
    t.idle <- c :: t.idle;
    Condition.signal t.cond;
    Mutex.unlock t.m

  (* For connections in an unknown protocol state (I/O error mid
     request): never return them to the pool. *)
  let destroy t c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.m;
    t.live <- t.live - 1;
    Condition.signal t.cond;
    Mutex.unlock t.m

  let close_idle t =
    Mutex.lock t.m;
    let idle = t.idle in
    t.idle <- [];
    t.live <- t.live - List.length idle;
    Mutex.unlock t.m;
    List.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      idle
end

(* --- the router ------------------------------------------------------------ *)

type shard = {
  name : string;
  s_addr : Server.addr;
  s_conns : Conns.t;
  mutable down_until : float;  (* cooldown after a failure; 0 = healthy *)
  m_requests : Metrics.counter;
  m_hedges : Metrics.counter;
  m_failovers : Metrics.counter;
  m_puts : Metrics.counter;
  m_seconds : Metrics.histogram;
}

let lat_window = 1024
let down_cooldown = 1.0 (* seconds a failed shard is deprioritized *)

type t = {
  cfg : config;
  ring : Ring.t;
  shard_tbl : (string * shard) list;  (* ring name -> shard *)
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  started : float;
  m : Mutex.t;  (* guards the mutable fields below *)
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
  mutable requests : int;
  mutable routed : int;
  mutable hedged : int;
  mutable hedge_wins : int;
  mutable failovers : int;
  mutable errors : int;
  mutable unavailable : int;
  mutable promotions : int;
  hits : (string, int) Hashtbl.t;  (* result key -> request count *)
  promoted : (string, unit) Hashtbl.t;
  latencies : float array;  (* ring of recent request latencies, ms *)
  mutable lat_n : int;
  mutable hedge_threshold : float;  (* seconds *)
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let shard_of t name = List.assoc name t.shard_tbl

let create cfg =
  if cfg.shards = [] then invalid_arg "Router.create: no shards";
  let names = List.map (fun s -> s.t_name) cfg.shards in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Router.create: duplicate shard names";
  let ring = Ring.create ~vnodes:cfg.vnodes names in
  let shard_tbl =
    List.map
      (fun s ->
        ( s.t_name,
          { name = s.t_name;
            s_addr = s.t_addr;
            s_conns =
              Conns.create ~size:cfg.pool_size ~max_waiters:cfg.max_waiters
                ~connect_timeout_ms:cfg.connect_timeout_ms s.t_addr;
            down_until = 0.0;
            m_requests =
              Metrics.counter "ogc_router_shard_requests_total"
                ~labels:[ ("shard", s.t_name) ];
            m_hedges =
              Metrics.counter "ogc_router_shard_hedges_total"
                ~labels:[ ("shard", s.t_name) ];
            m_failovers =
              Metrics.counter "ogc_router_shard_failovers_total"
                ~labels:[ ("shard", s.t_name) ];
            m_puts =
              Metrics.counter "ogc_router_shard_replica_puts_total"
                ~labels:[ ("shard", s.t_name) ];
            m_seconds =
              Metrics.histogram "ogc_router_shard_seconds"
                ~labels:[ ("shard", s.t_name) ] } ))
      cfg.shards
  in
  let domain =
    match cfg.addr with
    | Server.Unix_sock _ -> Unix.PF_UNIX
    | Server.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.addr with
  | Server.Unix_sock path -> if Sys.file_exists path then Unix.unlink path
  | Server.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of cfg.addr);
  Unix.listen fd 64;
  { cfg;
    ring;
    shard_tbl;
    listen_fd = fd;
    stopping = Atomic.make false;
    started = Unix.gettimeofday ();
    m = Mutex.create ();
    conns = [];
    threads = [];
    requests = 0;
    routed = 0;
    hedged = 0;
    hedge_wins = 0;
    failovers = 0;
    errors = 0;
    unavailable = 0;
    promotions = 0;
    hits = Hashtbl.create 256;
    promoted = Hashtbl.create 64;
    latencies = Array.make lat_window 0.0;
    lat_n = 0;
    hedge_threshold = 0.025 }

(* --- adaptive hedge threshold ---------------------------------------------- *)

let percentile = Metrics.percentile_sorted

(* Hedge at ~2x a recent p95: rare stragglers trigger a second copy,
   the common case never pays for one.  Clamped so a pathological
   window can neither hedge every request nor disable hedging. *)
let recompute_threshold t =
  match t.cfg.hedge_ms with
  | Some ms -> t.hedge_threshold <- ms /. 1000.0
  | None ->
    let lats = Array.sub t.latencies 0 (min t.lat_n lat_window) in
    Array.sort compare lats;
    let p95_s = percentile lats 0.95 /. 1000.0 in
    let budget = float_of_int t.cfg.request_timeout_ms /. 1000.0 in
    t.hedge_threshold <- Float.min (budget /. 4.0) (Float.max 0.002 (2.0 *. p95_s))

let record_latency t ms =
  locked t (fun () ->
      t.latencies.(t.lat_n mod lat_window) <- ms;
      t.lat_n <- t.lat_n + 1;
      if t.lat_n mod 64 = 0 then recompute_threshold t)

(* --- candidate selection --------------------------------------------------- *)

(* Ring successors of the route key, healthy shards first (ring order
   preserved within each class — if everything is down we still try, in
   order).  Promoted hot keys rotate their entry point across the first
   [replicas] successors so a popular analysis front is spread over its
   whole replica set instead of hammering the primary. *)
let candidates t rkey ~hits ~promoted =
  let names = Ring.successors t.ring rkey (List.length t.cfg.shards) in
  let names =
    if promoted && t.cfg.replicas > 1 then begin
      let r = min t.cfg.replicas (List.length names) in
      let rec split n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | x :: rest -> split (n - 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let replicas, rest = split r [] names in
      let k = hits mod r in
      let rot = List.filteri (fun i _ -> i >= k) replicas
                @ List.filteri (fun i _ -> i < k) replicas in
      rot @ rest
    end
    else names
  in
  let now = Unix.gettimeofday () in
  let shards = List.map (shard_of t) names in
  let up, down = List.partition (fun s -> s.down_until <= now) shards in
  up @ down

(* --- request forwarding ---------------------------------------------------- *)

let envelope ?id ~status extra =
  J.to_string ~indent:false
    (J.Obj
       (("version", J.Str Version.version)
        :: (match id with Some s -> [ ("id", J.Str s) ] | None -> [])
        @ (("status", J.Str status) :: extra)))

(* Outcome cell shared between the request thread and its attempts.
   First response wins; [launched]/[errored] let the request thread
   distinguish "still computing" from "every attempt failed". *)
type cell = {
  cm : Mutex.t;
  mutable response : (int * string) option;  (* attempt index, line *)
  mutable launched : int;
  mutable errored : int;
}

(* Rewrite a request's trace members for one shard attempt: each attempt
   is its own child span, so each carries its own [parent_span]. *)
let with_trace_members j ~trace ~parent =
  match j with
  | J.Obj kvs ->
    let kvs =
      List.filter (fun (k, _) -> k <> "trace_id" && k <> "parent_span") kvs
    in
    J.Obj (kvs @ [ ("trace_id", J.Str trace); ("parent_span", J.Int parent) ])
  | j -> j

(* One attempt = one shard round trip on a pooled connection, run on its
   own thread so the request thread can hedge past it.  An abandoned
   attempt still reads its response line before releasing the
   connection — returning a connection with an unread response would
   desync every later request on it.

   [traced] carries the parsed request and the router-side trace context
   (captured inside the router's request span): the attempt then opens a
   child span on its own thread, stamps the wire request with its own
   span id as [parent_span], and emits the flow-out half of the
   cross-process arrow — the shard computes the same flow id from the
   wire members alone. *)
let launch_attempt cell idx sh ~traced line why =
  Mutex.lock cell.cm;
  cell.launched <- cell.launched + 1;
  Mutex.unlock cell.cm;
  let roundtrip line =
    let record_error () =
      sh.down_until <- Unix.gettimeofday () +. down_cooldown;
      Mutex.lock cell.cm;
      cell.errored <- cell.errored + 1;
      Mutex.unlock cell.cm
    in
    match Conns.acquire sh.s_conns with
    | exception _ -> record_error ()
    | c -> (
      if Metrics.enabled () then Metrics.incr sh.m_requests;
      let t0 = Unix.gettimeofday () in
      match
        output_string c.oc line;
        output_char c.oc '\n';
        flush c.oc;
        input_line c.ic
      with
      | resp ->
        Conns.release sh.s_conns c;
        if Metrics.enabled () then
          Metrics.observe sh.m_seconds (Unix.gettimeofday () -. t0);
        sh.down_until <- 0.0;
        Mutex.lock cell.cm;
        if cell.response = None then cell.response <- Some (idx, resp);
        Mutex.unlock cell.cm
      | exception _ ->
        Conns.destroy sh.s_conns c;
        record_error ())
  in
  let body () =
    match traced with
    | None -> roundtrip line
    | Some (j, ctx) ->
      Span.with_context (Some ctx) (fun () ->
          Span.with_ ~name:"attempt"
            ~args:[ ("shard", J.Str sh.name); ("why", J.Str why) ]
            (fun () ->
              (* Inside [with_] the ambient parent is this attempt span's
                 own id — exactly what the shard must nest under. *)
              let asid =
                match Span.current () with
                | Some c -> c.Span.parent
                | None -> 0
              in
              let trace = ctx.Span.trace in
              Span.flow_out ~id:(Span.wire_flow_id ~trace ~parent:asid);
              roundtrip
                (J.to_string ~indent:false
                   (with_trace_members j ~trace ~parent:asid))))
  in
  ignore (Thread.create body ())

(* Forward [line] along [cands], hedging once past a straggler and
   failing over past errors, until a response, exhaustion, or the
   request budget runs out.  Returns the response line and whether a
   hedge was launched (for the flight record). *)
let forward t ~t0 ~id ~hedge ?traced line cands =
  let cell =
    { cm = Mutex.create (); response = None; launched = 0; errored = 0 }
  in
  let deadline = t0 +. (float_of_int t.cfg.request_timeout_ms /. 1000.0) in
  let remaining = ref cands in
  let attempt_no = ref 0 in
  let did_hedge = ref false in
  let launch why =
    match !remaining with
    | [] -> false
    | sh :: rest ->
      remaining := rest;
      let why_name =
        match why with
        | `Primary -> "primary"
        | `Hedge -> "hedge"
        | `Failover -> "failover"
      in
      (match why with
      | `Primary -> ()
      | `Hedge ->
        did_hedge := true;
        locked t (fun () -> t.hedged <- t.hedged + 1);
        if Metrics.enabled () then Metrics.incr sh.m_hedges
      | `Failover ->
        locked t (fun () -> t.failovers <- t.failovers + 1);
        if Metrics.enabled () then Metrics.incr sh.m_failovers);
      launch_attempt cell !attempt_no sh ~traced line why_name;
      incr attempt_no;
      true
  in
  ignore (launch `Primary);
  let hedge_at = ref (t0 +. t.hedge_threshold) in
  let give_up () =
    locked t (fun () ->
        t.unavailable <- t.unavailable + 1;
        t.errors <- t.errors + 1);
    envelope ?id ~status:"unavailable"
      [ ("error", J.Str "no shard answered within the request budget") ]
  in
  let rec wait () =
    let response, launched, errored =
      Mutex.lock cell.cm;
      let r = (cell.response, cell.launched, cell.errored) in
      Mutex.unlock cell.cm;
      r
    in
    match response with
    | Some (idx, resp) ->
      if idx > 0 then locked t (fun () -> t.hedge_wins <- t.hedge_wins + 1);
      resp
    | None ->
      let now = Unix.gettimeofday () in
      if errored >= launched then
        (* Every launched attempt failed: fail over immediately. *)
        if launch `Failover then begin
          hedge_at := now +. t.hedge_threshold;
          wait ()
        end
        else give_up ()
      else if now >= deadline then give_up ()
      else begin
        if hedge && now >= !hedge_at && launched - errored = 1 then begin
          (* One hedge per in-flight attempt; a straggler past the
             threshold gets exactly one shadow copy. *)
          ignore (launch `Hedge);
          hedge_at := deadline
        end;
        (* OCaml's Condition has no timed wait; a sub-millisecond poll
           keeps hedge latency overhead invisible next to an analysis. *)
        Thread.delay 0.0005;
        wait ()
      end
  in
  let resp = wait () in
  (resp, !did_hedge)

(* --- hot-key promotion ----------------------------------------------------- *)

let hits_cap = 8192

let bump_hits t key =
  locked t (fun () ->
      if Hashtbl.length t.hits >= hits_cap then Hashtbl.reset t.hits;
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.hits key) in
      Hashtbl.replace t.hits key n;
      (n, Hashtbl.mem t.promoted key))

(* Push a hot result to the replica shards, off the request path.  A
   failed put is dropped: replication is a latency optimization, the
   primary still owns the result. *)
let replicate t ckey rkey result =
  let line =
    J.to_string ~indent:false
      (J.Obj
         [ ("proto", J.Int Protocol.proto_version);
           ("op", J.Str "put");
           ("key", J.Str ckey);
           ("result", result) ])
  in
  let targets =
    match Ring.successors t.ring rkey t.cfg.replicas with
    | [] -> []
    | _primary :: replicas -> replicas
  in
  List.iter
    (fun name ->
      let sh = shard_of t name in
      match Conns.acquire sh.s_conns with
      | exception _ -> ()
      | c -> (
        match
          output_string c.oc line;
          output_char c.oc '\n';
          flush c.oc;
          input_line c.ic
        with
        | _ ->
          Conns.release sh.s_conns c;
          if Metrics.enabled () then Metrics.incr sh.m_puts
        | exception _ -> Conns.destroy sh.s_conns c))
    targets

let maybe_promote t ckey rkey ~hits resp =
  if
    t.cfg.replicas > 1 && hits >= t.cfg.promote_after
    && not (locked t (fun () -> Hashtbl.mem t.promoted ckey))
  then begin
    match J.of_string resp with
    | exception J.Parse_error _ -> ()
    | j -> (
      match (J.member "status" j, J.member "result" j) with
      | J.Str "ok", (J.Obj _ as result) ->
        locked t (fun () ->
            Hashtbl.replace t.promoted ckey ();
            t.promotions <- t.promotions + 1);
        ignore (Thread.create (fun () -> replicate t ckey rkey result) ())
      | _ -> ())
  end

(* --- fleet trace assembly --------------------------------------------------- *)

(* Pull one shard's span rings over its own protocol ([op = "trace"]).
   A dead or pre-trace shard is skipped — a fleet trace with a hole
   beats no trace during the exact incidents traces are for. *)
let pull_shard_trace sh =
  match Conns.acquire sh.s_conns with
  | exception _ -> None
  | c -> (
    let req =
      J.to_string ~indent:false
        (J.Obj
           [ ("proto", J.Int Protocol.proto_version); ("op", J.Str "trace") ])
    in
    match
      output_string c.oc req;
      output_char c.oc '\n';
      flush c.oc;
      input_line c.ic
    with
    | exception _ ->
      Conns.destroy sh.s_conns c;
      None
    | resp -> (
      Conns.release sh.s_conns c;
      match J.of_string resp with
      | exception J.Parse_error _ -> None
      | j -> (
        match (J.member "status" j, J.member "result" j) with
        | J.Str "ok", (J.Obj _ as doc) ->
          (* Label the track with the router's name for the shard — the
             fleet-topology name the operator configured — rather than
             the shard's self-reported one. *)
          Some (sh.name, doc)
        | _ -> None)))

(* Every process's rings, router first: the payload [ogc trace --fleet]
   merges with {!Ogc_obs.Span.merge_processes}. *)
let fleet_trace_json t =
  let shards = List.filter_map (fun (_, sh) -> pull_shard_trace sh) t.shard_tbl in
  J.Obj
    [ ("processes",
       J.Arr
         (List.map
            (fun (name, doc) ->
              J.Obj [ ("name", J.Str name); ("trace", doc) ])
            (("router", Span.export ()) :: shards))) ]

(* --- request handling ------------------------------------------------------ *)

(* Router-minted trace ids: unique across restarts and co-located
   processes without any coordination. *)
let mint_trace =
  let counter = Atomic.make 0 in
  fun () ->
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "%d/%d/%.6f" (Unix.getpid ())
            (Atomic.fetch_and_add counter 1)
            (Unix.gettimeofday ())))

(* The response status without a full JSON parse: the envelope always
   renders ["status"] early, and the flight record must not make the
   router reparse every forwarded response. *)
let status_of_line line =
  let marker = "\"status\":\"" in
  let mlen = String.length marker in
  let llen = String.length line in
  let rec find i =
    if i + mlen > llen then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> "unknown"
  | Some start -> (
    match String.index_from_opt line start '"' with
    | Some stop -> String.sub line start (stop - start)
    | None -> "unknown")

let stats_json t =
  let counters, lats, threshold =
    locked t (fun () ->
        ( ( t.requests,
            t.routed,
            t.hedged,
            t.hedge_wins,
            t.failovers,
            t.errors,
            t.unavailable,
            t.promotions,
            t.lat_n ),
          Array.sub t.latencies 0 (min t.lat_n lat_window),
          t.hedge_threshold ))
  in
  let requests, routed, hedged, hedge_wins, failovers, errors, unavailable,
      promotions, lat_n =
    counters
  in
  Array.sort compare lats;
  let now = Unix.gettimeofday () in
  J.Obj
    [ ("role", J.Str "router");
      ("uptime_s", J.Float (now -. t.started));
      ("requests", J.Int requests);
      ("routed", J.Int routed);
      ("hedged", J.Int hedged);
      ("hedge_wins", J.Int hedge_wins);
      ("failovers", J.Int failovers);
      ("errors", J.Int errors);
      ("unavailable", J.Int unavailable);
      ("promotions", J.Int promotions);
      ("hedge_threshold_ms", J.Float (threshold *. 1000.0));
      ("latency_ms",
       J.Obj
         [ ("count", J.Int lat_n);
           ("p50", J.Float (percentile lats 0.50));
           ("p95", J.Float (percentile lats 0.95)) ]);
      ("shards",
       J.Arr
         (List.map
            (fun (_, sh) ->
              J.Obj
                [ ("name", J.Str sh.name);
                  ("addr", J.Str (Server.addr_string sh.s_addr));
                  ("down", J.Bool (sh.down_until > now)) ])
            t.shard_tbl)) ]

let handle_line t line =
  let t0 = Unix.gettimeofday () in
  locked t (fun () -> t.requests <- t.requests + 1);
  (* Flight-record facts filled in as the request progresses. *)
  let fl_id = ref None and fl_trace = ref None and fl_key = ref "" in
  let fl_hedged = ref false and fl_op = ref "invalid" in
  let response =
    match J.of_string line with
    | exception J.Parse_error msg ->
      locked t (fun () -> t.errors <- t.errors + 1);
      envelope ~status:"error" [ ("error", J.Str msg) ]
    | j -> (
      let id = match J.member "id" j with J.Str s -> Some s | _ -> None in
      fl_id := id;
      match Protocol.op_of_json j with
      | exception J.Parse_error msg ->
        locked t (fun () -> t.errors <- t.errors + 1);
        envelope ?id ~status:"error" [ ("error", J.Str msg) ]
      | exception Protocol.Version_mismatch got ->
        locked t (fun () -> t.errors <- t.errors + 1);
        envelope ?id ~status:"unsupported_protocol"
          [ ("error", J.Str "protocol version mismatch");
            ("expected", J.Int Protocol.proto_version);
            ("got", J.Int got) ]
      | Protocol.Ping ->
        fl_op := "ping";
        envelope ?id ~status:"ok" [ ("op", J.Str "ping") ]
      | Protocol.Stats ->
        fl_op := "stats";
        envelope ?id ~status:"ok"
          [ ("op", J.Str "stats"); ("result", stats_json t) ]
      | Protocol.Metrics ->
        fl_op := "metrics";
        envelope ?id ~status:"ok"
          [ ("op", J.Str "metrics");
            ("exposition", J.Str (Metrics.to_prometheus ()));
            ("result", Metrics.to_json ()) ]
      | Protocol.Trace ->
        fl_op := "trace";
        envelope ?id ~status:"ok"
          [ ("op", J.Str "trace");
            ("process", J.Str "router");
            ("result", fleet_trace_json t) ]
      | Protocol.Flight ->
        fl_op := "flight";
        envelope ?id ~status:"ok"
          [ ("op", J.Str "flight"); ("result", Flight.to_json_all ()) ]
      | Protocol.Fetch key | Protocol.Put (key, _) ->
        (* Replication ops address a single owner; no hedging. *)
        fl_op := (match J.member "op" j with J.Str s -> s | _ -> "fetch");
        fl_key := key;
        locked t (fun () -> t.routed <- t.routed + 1);
        let cands = candidates t key ~hits:0 ~promoted:false in
        fst (forward t ~t0 ~id ~hedge:false line cands)
      | Protocol.Profile (preq, _) ->
        (* A profile push must land where the program's analyses land —
           the route_key owner — so the shard that serves the VRS
           requests is the one whose epoch advances.  Single owner, no
           hedging (a push is not idempotent: replaying it would double
           the counts). *)
        fl_op := "profile";
        let rkey = Protocol.route_key preq in
        fl_key := rkey;
        locked t (fun () -> t.routed <- t.routed + 1);
        let cands = candidates t rkey ~hits:0 ~promoted:false in
        fst (forward t ~t0 ~id ~hedge:false line cands)
      | Protocol.Analyze req ->
        fl_op := "analyze";
        locked t (fun () -> t.routed <- t.routed + 1);
        let rkey = Protocol.route_key req in
        let ckey = Protocol.cache_key req in
        fl_key := rkey;
        let hits, already_promoted = bump_hits t ckey in
        let cands = candidates t rkey ~hits ~promoted:already_promoted in
        let serve ~traced () =
          let resp, hedged = forward t ~t0 ~id ~hedge:true ?traced line cands in
          fl_hedged := hedged;
          resp
        in
        let resp =
          if not (Span.enabled ()) then begin
            (* Tracing off: the wire request is forwarded untouched (a
               client-supplied trace id still reaches the shards). *)
            fl_trace := req.Protocol.trace_id;
            serve ~traced:None ()
          end
          else begin
            (* Adopt the client's trace id or mint one, open the router
               request span under it, and hand the inner context (whose
               parent is that span) to every attempt. *)
            let trace =
              match req.Protocol.trace_id with
              | Some tr -> tr
              | None -> mint_trace ()
            in
            fl_trace := Some trace;
            let outer =
              { Span.trace;
                parent = Option.value ~default:0 req.Protocol.parent_span }
            in
            Span.with_context (Some outer) (fun () ->
                Span.with_ ~name:"request"
                  ~args:[ ("op", J.Str "analyze") ]
                  (fun () ->
                    (match req.Protocol.parent_span with
                    | Some parent ->
                      Span.flow_in ~id:(Span.wire_flow_id ~trace ~parent)
                    | None -> ());
                    let traced =
                      Option.map (fun c -> (j, c)) (Span.current ())
                    in
                    serve ~traced ()))
          end
        in
        maybe_promote t ckey rkey ~hits resp;
        record_latency t ((Unix.gettimeofday () -. t0) *. 1000.0);
        resp)
  in
  Flight.record
    { Flight.f_id = !fl_id;
      f_trace = !fl_trace;
      f_key = !fl_key;
      f_shard = "router";
      f_op = !fl_op;
      f_queue_ms = 0.0;
      f_hedged = !fl_hedged;
      f_cache = "";
      f_outcome = status_of_line response;
      f_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
      f_ts = t0 };
  response

(* --- lifecycle (mirrors Server) -------------------------------------------- *)

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | "" -> ()
       | line ->
         output_string oc (handle_line t (String.trim line));
         output_char oc '\n';
         flush oc
       | exception (End_of_file | Sys_error _) -> continue := false
     done
   with _ -> ());
  locked t (fun () -> t.conns <- List.filter (fun c -> c != fd) t.conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    try
      let domain =
        match t.cfg.addr with
        | Server.Unix_sock _ -> Unix.PF_UNIX
        | Server.Tcp _ -> Unix.PF_INET
      in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (sockaddr_of t.cfg.addr)
       with Unix.Unix_error _ -> ());
      Unix.close fd
    with _ -> ()
  end

let install_sigint t =
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t))

let run t =
  (* Shard connections can die mid-write (a killed shard, a dropped
     client); that must surface as EPIPE, not kill the router. *)
  Server.ignore_sigpipe ();
  Server.install_sigusr1 ();
  Log.info "ogc-router: listening"
    ~fields:
      [ ("version", J.Str Version.version);
        ("addr", J.Str (Server.addr_string t.cfg.addr));
        ("shards",
         J.Arr (List.map (fun (n, _) -> J.Str n) t.shard_tbl));
        ("replicas", J.Int t.cfg.replicas) ];
  let continue = ref true in
  while !continue do
    if Atomic.get t.stopping then continue := false
    else
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.stopping then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          continue := false
        end
        else
          locked t (fun () ->
              t.conns <- fd :: t.conns;
              t.threads <- Thread.create (handle_conn t) fd :: t.threads)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Log.info "ogc-router: draining" ~fields:[];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
  | Server.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Server.Tcp _ -> ());
  let conns, threads = locked t (fun () -> (t.conns, t.threads)) in
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join threads;
  List.iter (fun (_, sh) -> Conns.close_idle sh.s_conns) t.shard_tbl;
  Log.info "ogc-router: stopped"
    ~fields:
      [ ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
        ("requests", J.Int (locked t (fun () -> t.requests))) ]
