lib/ir/validate.ml: Array Fmt Hashtbl Instr Label List Ogc_isa Prog Reg
