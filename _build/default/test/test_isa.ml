(* Unit tests for the instruction set: evaluation semantics, register
   conventions, classes and printing. *)

open Ogc_isa

let r n = Reg.of_int n

let test_reg_conventions () =
  Alcotest.(check int) "zero" 31 (Reg.to_int Reg.zero);
  Alcotest.(check int) "sp" 30 (Reg.to_int Reg.sp);
  Alcotest.(check int) "ret" 0 (Reg.to_int Reg.ret);
  Alcotest.(check int) "arg0" 16 (Reg.to_int (Reg.arg 0));
  Alcotest.(check int) "arg5" 21 (Reg.to_int (Reg.arg 5));
  Alcotest.(check int) "callee saved" 6 (List.length Reg.callee_saved);
  Alcotest.(check int) "all" 32 (List.length Reg.all);
  Alcotest.(check bool) "caller+callee+sp+zero = 32" true
    (List.length Reg.caller_saved + List.length Reg.callee_saved + 2 = 32);
  Alcotest.check_raises "arg 6" (Invalid_argument "Reg.arg 6") (fun () ->
      ignore (Reg.arg 6));
  Alcotest.check_raises "of_int 32" (Invalid_argument "Reg.of_int 32")
    (fun () -> ignore (Reg.of_int 32))

let test_eval_add_widths () =
  Alcotest.(check int64) "add64" 300L (Instr.eval_alu Instr.Add Width.W64 100L 200L);
  (* 100+200 = 300 = 0x12C; low byte 0x2C = 44, sign-extended *)
  Alcotest.(check int64) "add8 wrap" 44L
    (Instr.eval_alu Instr.Add Width.W8 100L 200L);
  (* 200 = 0xC8 -> sext8 = -56 *)
  Alcotest.(check int64) "add8 negative" (-56L)
    (Instr.eval_alu Instr.Add Width.W8 100L 100L);
  Alcotest.(check int64) "add32 wrap" Int64.(neg 0x8000_0000L)
    (Instr.eval_alu Instr.Add Width.W32 0x7FFF_FFFFL 1L)

let test_eval_div_total () =
  Alcotest.(check int64) "x/0 = 0" 0L (Instr.eval_alu Instr.Div Width.W64 5L 0L);
  Alcotest.(check int64) "x rem 0 = 0" 0L (Instr.eval_alu Instr.Rem Width.W64 5L 0L);
  Alcotest.(check int64) "min/-1 wraps" Int64.min_int
    (Instr.eval_alu Instr.Div Width.W64 Int64.min_int (-1L));
  Alcotest.(check int64) "min rem -1 = 0" 0L
    (Instr.eval_alu Instr.Rem Width.W64 Int64.min_int (-1L));
  Alcotest.(check int64) "-7/2" (-3L) (Instr.eval_alu Instr.Div Width.W64 (-7L) 2L);
  Alcotest.(check int64) "-7 rem 2" (-1L) (Instr.eval_alu Instr.Rem Width.W64 (-7L) 2L)

let test_eval_shifts () =
  Alcotest.(check int64) "sll masks amount" 2L
    (Instr.eval_alu Instr.Sll Width.W64 1L 65L);
  Alcotest.(check int64) "srl64 of -1 by 1" Int64.max_int
    (Instr.eval_alu Instr.Srl Width.W64 (-1L) 1L);
  (* srl at W8: only the low byte participates, zero-filled. *)
  Alcotest.(check int64) "srl8 of -1 by 4" 15L
    (Instr.eval_alu Instr.Srl Width.W8 (-1L) 4L);
  Alcotest.(check int64) "srl by 0 is identity" (-5L)
    (Instr.eval_alu Instr.Srl Width.W64 (-5L) 0L);
  Alcotest.(check int64) "sra of -8 by 2" (-2L)
    (Instr.eval_alu Instr.Sra Width.W64 (-8L) 2L)

let test_eval_logic () =
  Alcotest.(check int64) "bic" 0xF0L (Instr.eval_alu Instr.Bic Width.W64 0xFFL 0x0FL);
  Alcotest.(check int64) "and" 0x0FL (Instr.eval_alu Instr.And Width.W64 0xFFL 0x0FL);
  Alcotest.(check int64) "xor" 0xF0L (Instr.eval_alu Instr.Xor Width.W64 0xFFL 0x0FL)

let test_eval_cmp () =
  Alcotest.(check int64) "lt signed" 1L
    (Instr.eval_cmp Instr.Clt Width.W64 (-1L) 0L);
  Alcotest.(check int64) "ult unsigned" 0L
    (Instr.eval_cmp Instr.Cult Width.W64 (-1L) 0L);
  Alcotest.(check int64) "eq at width" 1L
    (Instr.eval_cmp Instr.Ceq Width.W8 256L 0L);
  Alcotest.(check int64) "le" 1L (Instr.eval_cmp Instr.Cle Width.W64 3L 3L);
  Alcotest.(check int64) "cule" 1L (Instr.eval_cmp Instr.Cule Width.W64 3L 3L)

let test_eval_cond () =
  Alcotest.(check bool) "eq" true (Instr.eval_cond Instr.Eq 0L);
  Alcotest.(check bool) "ne" false (Instr.eval_cond Instr.Ne 0L);
  Alcotest.(check bool) "lt" true (Instr.eval_cond Instr.Lt (-1L));
  Alcotest.(check bool) "ge" true (Instr.eval_cond Instr.Ge 0L);
  Alcotest.(check bool) "gt" false (Instr.eval_cond Instr.Gt 0L);
  Alcotest.(check bool) "le" true (Instr.eval_cond Instr.Le (-5L))

let test_defs_uses () =
  let add = Instr.Alu { op = Instr.Add; width = Width.W64; src1 = r 1;
                        src2 = Instr.Reg (r 2); dst = r 3 } in
  Alcotest.(check (list int)) "add defs" [ 3 ]
    (List.map Reg.to_int (Instr.defs add));
  Alcotest.(check (list int)) "add uses" [ 1; 2 ]
    (List.map Reg.to_int (Instr.uses add));
  let cmov = Instr.Cmov { cond = Instr.Ne; width = Width.W64; test = r 1;
                          src = Instr.Reg (r 2); dst = r 3 } in
  Alcotest.(check (list int)) "cmov reads its old dst" [ 1; 3; 2 ]
    (List.map Reg.to_int (Instr.uses cmov));
  let store = Instr.Store { width = Width.W8; base = r 4; offset = 0L; src = r 5 } in
  Alcotest.(check (list int)) "store defs" [] (List.map Reg.to_int (Instr.defs store));
  let call = Instr.Call { callee = "f" } in
  Alcotest.(check bool) "call clobbers caller-saved" true
    (List.length (Instr.defs call) = List.length Reg.caller_saved)

let test_with_width () =
  let add = Instr.Alu { op = Instr.Add; width = Width.W64; src1 = r 1;
                        src2 = Instr.Imm 5L; dst = r 3 } in
  Alcotest.(check string) "narrowed" "add8 r1, #5, r3"
    (Instr.to_string (Instr.with_width add Width.W8));
  let call = Instr.Call { callee = "f" } in
  Alcotest.(check string) "call unchanged" "call f"
    (Instr.to_string (Instr.with_width call Width.W8))

let test_classes () =
  let mk op = Instr.Alu { op; width = Width.W64; src1 = r 1;
                          src2 = Instr.Imm 0L; dst = r 2 } in
  Alcotest.(check string) "add" "ADD" (Instr.iclass_name (Instr.iclass (mk Instr.Add)));
  Alcotest.(check string) "div in MUL row" "MUL"
    (Instr.iclass_name (Instr.iclass (mk Instr.Div)));
  Alcotest.(check string) "bic in AND row" "AND"
    (Instr.iclass_name (Instr.iclass (mk Instr.Bic)));
  Alcotest.(check string) "sra" "SHIFT"
    (Instr.iclass_name (Instr.iclass (mk Instr.Sra)));
  Alcotest.(check int) "ten ALU classes" 10 (List.length Instr.all_alu_classes)

let test_printing () =
  Alcotest.(check string) "load" "ld8u 4(r5), r6"
    (Instr.to_string
       (Instr.Load { width = Width.W8; signed = false; base = r 5; offset = 4L;
                     dst = r 6 }));
  Alcotest.(check string) "store" "st32 r7, -8(sp)"
    (Instr.to_string
       (Instr.Store { width = Width.W32; base = Reg.sp; offset = -8L; src = r 7 }));
  Alcotest.(check string) "li" "li #-1, r1"
    (Instr.to_string (Instr.Li { dst = r 1; imm = -1L }))

(* Property: eval at width w only depends on the low w bits of inputs, for
   the low-bit-determined operations (the foundation of useful-width
   re-encoding). *)
let low_bit_ops = [ Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or;
                    Instr.Xor; Instr.Bic ]

let prop_low_bits =
  QCheck.Test.make ~name:"narrow ops ignore high input bits" ~count:5000
    QCheck.(
      quad (oneofl low_bit_ops)
        (oneofl [ Width.W8; Width.W16; Width.W32 ])
        int64 int64)
    (fun (op, w, a, b) ->
      let garbage = 0x5A5A_5A5A_0000_0000L in
      Int64.equal
        (Instr.eval_alu op w a b)
        (Instr.eval_alu op w (Int64.logxor a garbage) b))

let prop_result_fits =
  QCheck.Test.make ~name:"results are canonical for their width" ~count:5000
    QCheck.(
      quad
        (oneofl [ Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or;
                  Instr.Xor; Instr.Bic; Instr.Sll; Instr.Srl; Instr.Sra;
                  Instr.Div; Instr.Rem ])
        (oneofl Width.all) int64 int64)
    (fun (op, w, a, b) -> Width.fits (Instr.eval_alu op w a b) w)

(* --- binary encoding ---------------------------------------------------------- *)

module Encoding = Ogc_isa.Encoding

let test_opcode_space () =
  Alcotest.(check int) "opcode space size" 116 (List.length Encoding.all_opcodes);
  (* Mnemonics are unique. *)
  let names = List.map snd Encoding.all_opcodes in
  Alcotest.(check int) "mnemonics unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  (* Spot-check mnemonics and numbering. *)
  let op_of i = Encoding.opcode_of i in
  let add8 = op_of (Instr.Alu { op = Instr.Add; width = Width.W8; src1 = r 1;
                                src2 = Instr.Imm 0L; dst = r 2 }) in
  Alcotest.(check string) "add8" "add8" (Encoding.mnemonic add8);
  Alcotest.(check int) "add8 is opcode 0" 0 (Encoding.opcode_to_int add8);
  let ld8u = op_of (Instr.Load { width = Width.W8; signed = false; base = r 1;
                                 offset = 0L; dst = r 2 }) in
  Alcotest.(check string) "ld8u" "ld8u" (Encoding.mnemonic ld8u)

let test_base_alpha () =
  let opc op width =
    Encoding.opcode_of
      (Instr.Alu { op; width; src1 = r 1; src2 = Instr.Imm 0L; dst = r 2 })
  in
  (* The paper's §4.3 split: Alpha has addq/addl but no byte/halfword
     arithmetic, no narrow logicals/shifts/compares/cmovs; all memory
     widths exist. *)
  Alcotest.(check bool) "add64 base" true (Encoding.base_alpha (opc Instr.Add Width.W64));
  Alcotest.(check bool) "add32 base" true (Encoding.base_alpha (opc Instr.Add Width.W32));
  Alcotest.(check bool) "add8 extension" false (Encoding.base_alpha (opc Instr.Add Width.W8));
  Alcotest.(check bool) "and32 extension" false (Encoding.base_alpha (opc Instr.And Width.W32));
  Alcotest.(check bool) "and64 base" true (Encoding.base_alpha (opc Instr.And Width.W64));
  Alcotest.(check bool) "div64 not on Alpha" false
    (Encoding.base_alpha (opc Instr.Div Width.W64));
  let cmp8 =
    Encoding.opcode_of
      (Instr.Cmp { op = Instr.Ceq; width = Width.W8; src1 = r 1;
                   src2 = Instr.Imm 0L; dst = r 2 })
  in
  Alcotest.(check bool) "cmpeq8 extension" false (Encoding.base_alpha cmp8);
  let ld16 =
    Encoding.opcode_of
      (Instr.Load { width = Width.W16; signed = false; base = r 1;
                    offset = 0L; dst = r 2 })
  in
  Alcotest.(check bool) "ldwu base" true (Encoding.base_alpha ld16)

let test_encode_roundtrip_unit () =
  let st = Encoding.identity_symtab () in
  let cases =
    [ Instr.Alu { op = Instr.Add; width = Width.W8; src1 = r 1;
                  src2 = Instr.Imm (-32768L); dst = r 2 };
      Instr.Alu { op = Instr.Sra; width = Width.W64; src1 = r 31;
                  src2 = Instr.Reg (r 30); dst = r 29 };
      Instr.Cmp { op = Instr.Cule; width = Width.W16; src1 = r 5;
                  src2 = Instr.Reg (r 6); dst = r 7 };
      Instr.Cmov { cond = Instr.Ge; width = Width.W32; test = r 1;
                   src = Instr.Imm 123L; dst = r 2 };
      Instr.Msk { width = Width.W8; src = r 3; dst = r 4 };
      Instr.Sext { width = Width.W16; src = r 3; dst = r 4 };
      Instr.Li { dst = r 9; imm = Int64.min_int };
      Instr.La { dst = r 9; symbol = "table" };
      Instr.Load { width = Width.W32; signed = true; base = r 30;
                   offset = -8L; dst = r 1 };
      Instr.Store { width = Width.W64; base = r 30; offset = 184L; src = r 9 };
      Instr.Call { callee = "helper" };
      Instr.Emit { src = r 1 } ]
  in
  List.iter
    (fun i ->
      let e = Encoding.encode st i in
      let d = Encoding.decode st e in
      Alcotest.(check string) (Instr.to_string i) (Instr.to_string i)
        (Instr.to_string d);
      Alcotest.(check bool) "size is 4 or 12" true
        (let s = Encoding.size_bytes e in
         s = 4 || s = 12))
    cases

(* Round-trip every instruction of every compiled workload binary,
   before and after VRP narrows the opcodes. *)
let test_encode_roundtrip_workloads () =
  List.iter
    (fun (w : Ogc_workloads.Workload.t) ->
      let p = Ogc_workloads.Workload.compile w Ogc_workloads.Workload.Train in
      ignore (Ogc_core.Vrp.run p);
      let st = Encoding.identity_symtab () in
      let n = ref 0 in
      Ogc_ir.Prog.iter_all_ins p (fun _ _ ins ->
          incr n;
          let i = ins.Ogc_ir.Prog.op in
          let d = Encoding.decode st (Encoding.encode st i) in
          if Instr.to_string i <> Instr.to_string d then
            Alcotest.failf "%s: %s round-tripped to %s" w.Ogc_workloads.Workload.name
              (Instr.to_string i) (Instr.to_string d));
      Alcotest.(check bool) "instructions checked" true (!n > 100))
    Ogc_workloads.Workload.all

let arb_instr =
  let open QCheck.Gen in
  let reg = map Reg.of_int (int_range 0 31) in
  let dst = map Reg.of_int (int_range 0 30) in
  let operand =
    oneof [ map (fun r -> Instr.Reg r) reg; map (fun v -> Instr.Imm v) ui64 ]
  in
  let width = oneofl Width.all in
  let gen =
    oneof
      [
        (let* op = oneofl
             [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem;
               Instr.And; Instr.Or; Instr.Xor; Instr.Bic; Instr.Sll;
               Instr.Srl; Instr.Sra ] in
         let* width = width and* src1 = reg and* src2 = operand and* dst = dst in
         return (Instr.Alu { op; width; src1; src2; dst }));
        (let* op = oneofl
             [ Instr.Ceq; Instr.Clt; Instr.Cle; Instr.Cult; Instr.Cule ] in
         let* width = width and* src1 = reg and* src2 = operand and* dst = dst in
         return (Instr.Cmp { op; width; src1; src2; dst }));
        (let* cond = oneofl
             [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge ] in
         let* width = width and* test = reg and* src = operand and* dst = dst in
         return (Instr.Cmov { cond; width; test; src; dst }));
        (let* width = width and* src = reg and* dst = dst in
         return (Instr.Msk { width; src; dst }));
        (let* width = width and* src = reg and* dst = dst in
         return (Instr.Sext { width; src; dst }));
        (let* imm = ui64 and* dst = dst in return (Instr.Li { dst; imm }));
        (let* width = width and* signed = bool and* base = reg and* dst = dst
         and* offset = map Int64.of_int (int_range (-4096) 4096) in
         return (Instr.Load { width; signed; base; offset; dst }));
        (let* width = width and* base = reg and* src = reg
         and* offset = map Int64.of_int (int_range (-4096) 4096) in
         return (Instr.Store { width; base; offset; src }));
        (let* src = reg in return (Instr.Emit { src }));
      ]
  in
  QCheck.make ~print:Instr.to_string gen

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips" ~count:5000 arb_instr
    (fun i ->
      let st = Encoding.identity_symtab () in
      let d = Encoding.decode st (Encoding.encode st i) in
      String.equal (Instr.to_string i) (Instr.to_string d))

let prop_opcode_width_consistent =
  QCheck.Test.make ~name:"opcode embeds the instruction width" ~count:5000
    arb_instr (fun i ->
      let op = Encoding.opcode_of i in
      let m = Encoding.mnemonic op in
      (* A width-bearing mnemonic must end with the width's digits. *)
      match i with
      | Instr.Alu _ | Instr.Cmp _ | Instr.Cmov _ | Instr.Msk _ | Instr.Sext _
        ->
        let wstr = Width.to_string (Instr.width i) in
        let n = String.length m and k = String.length wstr in
        n >= k && String.sub m (n - k) k = wstr
      | _ -> true)

let () =
  Alcotest.run "isa"
    [
      ( "unit",
        [
          Alcotest.test_case "registers" `Quick test_reg_conventions;
          Alcotest.test_case "add widths" `Quick test_eval_add_widths;
          Alcotest.test_case "division is total" `Quick test_eval_div_total;
          Alcotest.test_case "shifts" `Quick test_eval_shifts;
          Alcotest.test_case "logic" `Quick test_eval_logic;
          Alcotest.test_case "compares" `Quick test_eval_cmp;
          Alcotest.test_case "conditions" `Quick test_eval_cond;
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
          Alcotest.test_case "with_width" `Quick test_with_width;
          Alcotest.test_case "classes" `Quick test_classes;
          Alcotest.test_case "printing" `Quick test_printing;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "opcode space" `Quick test_opcode_space;
          Alcotest.test_case "base alpha split" `Quick test_base_alpha;
          Alcotest.test_case "round-trip units" `Quick test_encode_roundtrip_unit;
          Alcotest.test_case "round-trip workloads" `Slow
            test_encode_roundtrip_workloads;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_low_bits; prop_result_fits; prop_encode_roundtrip;
            prop_opcode_width_consistent ] );
    ]
