(** Content-addressed analysis cache.

    Keys are MD5 digests of the canonical request (program payload +
    options + analyzer version — see {!Protocol.cache_key}); values are
    the serialized result payloads, byte-identical on every hit.  Two
    tiers:

    - an in-memory exact-LRU table bounded by [capacity];
    - optionally, one file per entry under [dir] ([<digest>.json],
      written atomically via rename), so a restarted server — or another
      server sharing the directory — rehydrates results it has never
      computed.  Disk lookups count as hits and promote the entry back
      into memory.

    All operations are thread-safe (one mutex; no I/O is performed while
    other threads are blocked on an analysis). *)

type t

type stats = {
  entries : int;  (** in-memory entries right now *)
  capacity : int;
  hits : int;  (** includes disk hits *)
  misses : int;
  evictions : int;  (** LRU evictions from the memory tier *)
  disk_hits : int;
  mem_bytes : int;  (** Σ payload bytes held in the memory tier *)
  disk_entries : int;  (** entry files currently under [dir] *)
  disk_bytes : int;  (** Σ file sizes under [dir] (0 without a dir) *)
}

val key_of_string : string -> string
(** MD5 hex digest of a canonical request string. *)

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [capacity] defaults to 256 entries (clamped to at least 1).  [dir]
    enables the persistent tier; it is created if missing. *)

val find : t -> string -> string option
(** Memory first, then disk; updates hit/miss counters and recency. *)

val peek : t -> string -> string option
(** Memory first, then disk, but with no side effects: no counter
    updates, no recency restamp, no disk-to-memory promotion.  Used by
    replication probes, which must not distort the serve loop's cache
    accounting. *)

val store : t -> string -> string -> unit
(** Idempotent: re-storing an existing key keeps the first value. *)

val stats : t -> stats
