lib/minic/codegen.mli: Ast Ogc_ir
