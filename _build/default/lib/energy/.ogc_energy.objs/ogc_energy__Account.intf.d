lib/energy/account.mli: Energy_params
