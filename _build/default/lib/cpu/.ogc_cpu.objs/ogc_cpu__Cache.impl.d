lib/cpu/cache.ml: Array Int64 Machine_config
