lib/isa/encoding.ml: Fmt Hashtbl Instr Int32 Int64 List Printf Reg Width
