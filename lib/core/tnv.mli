(** Top-N-values profiling table (Calder et al., used by paper §3.3).

    A fixed-size table of (value, count) pairs fed by the profiling
    interpreter at each candidate instruction.  When the table is full,
    new values are ignored until the periodic cleaning evicts the least
    frequently used half, letting fresh values enter.  A separate counter
    tracks the total number of observations. *)

type t

val create : ?capacity:int -> ?clean_interval:int -> unit -> t
(** Defaults: capacity 8, cleaning every 4096 observations. *)

val observe : t -> int64 -> unit
val total : t -> int

val of_entries :
  ?capacity:int -> ?clean_interval:int -> (int64 * int) list -> t
(** [of_entries entries] builds a table as if the given (value, count)
    observations had been streamed in: the [capacity] most frequent
    values are installed, and [total] counts every observation (so
    range frequencies from a clamped table remain lower bounds).
    Entries with non-positive counts are ignored. *)

(** Entries sorted by descending count. *)
val entries : t -> (int64 * int) list

(** [candidate_ranges t] enumerates the value ranges VRS may specialize
    on: for each prefix of the most frequent values, the tightest
    [(min, max)] covering the prefix together with a lower bound on the
    fraction of observations falling inside.  Sorted tightest first;
    empty when nothing was observed. *)
val candidate_ranges : t -> (int64 * int64 * float) list
