(** Semantic checking for MiniC programs.

    All values are integers, so "type" checking is mostly shape checking:
    symbols resolve, arrays are used as arrays, arities match, [void]
    functions yield no value, [break]/[continue] sit inside loops, and
    global initializers fit their objects.  {!check} raises {!Error} on
    the first violation. *)

exception Error of string * Ast.pos

type fsig = { fs_ret : Ast.ty option; fs_params : Ast.param list }

type info = { fun_sigs : (string * fsig) list }

val check : Ast.program -> info
