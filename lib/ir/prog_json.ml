module J = Ogc_json.Json

let format_tag = "ogc.prog"
let format_version = 1

let fail fmt = Fmt.kstr (fun s -> raise (J.Parse_error s)) fmt

(* --- encoding ------------------------------------------------------------- *)

let ins_to_json (i : Prog.ins) =
  J.Arr [ J.Int i.iid; J.Str (Ogc_isa.Instr.to_string i.op) ]

let block_to_json (b : Prog.block) =
  J.Obj
    [ ("label", J.Int (Label.to_int b.label));
      ("body", J.Arr (Array.to_list (Array.map ins_to_json b.body)));
      ("term",
       J.Arr [ J.Int b.term_iid; J.Str (Asm.terminator_to_string b.term) ]) ]

let func_to_json (f : Prog.func) =
  J.Obj
    [ ("name", J.Str f.fname);
      ("arity", J.Int f.arity);
      ("frame", J.Int f.frame_size);
      ("blocks", J.Arr (Array.to_list (Array.map block_to_json f.blocks))) ]

let global_to_json (g : Prog.global) =
  J.Obj
    [ ("name", J.Str g.gname); ("init", J.Str (Asm.hex_of_bytes g.init)) ]

let to_json (p : Prog.t) =
  J.Obj
    [ ("format", J.Str format_tag);
      ("format_version", J.Int format_version);
      ("globals", J.Arr (List.map global_to_json p.globals));
      ("funcs", J.Arr (List.map func_to_json p.funcs)) ]

(* --- decoding ------------------------------------------------------------- *)

(* Asm syntax errors inside a JSON tree surface as [Parse_error], so a
   malformed request fails uniformly whatever layer caught it. *)
let asm_guard f = try f () with Asm.Error m -> raise (J.Parse_error m)

let ins_of_json = function
  | J.Arr [ J.Int iid; J.Str text ] ->
    { Prog.iid; op = asm_guard (fun () -> Asm.instr_of_string text) }
  | _ -> fail "instruction: expected [iid, \"text\"]"

let block_of_json pos j =
  let label = J.get_int "label" j in
  if label <> pos then
    fail "block %d: label L%d out of order (blocks must be in label order)"
      pos label;
  let body =
    Array.of_list (List.map ins_of_json (J.get_list "body" j))
  in
  match J.member "term" j with
  | J.Arr [ J.Int term_iid; J.Str text ] ->
    { Prog.label = Label.of_int label; body;
      term = asm_guard (fun () -> Asm.terminator_of_string text);
      term_iid }
  | _ -> fail "block %d: bad terminator (expected [iid, \"text\"])" pos

let func_of_json j =
  { Prog.fname = J.get_string "name" j;
    arity = J.get_int "arity" j;
    frame_size = J.get_int "frame" j;
    blocks =
      Array.of_list (List.mapi block_of_json (J.get_list "blocks" j)) }

let global_of_json j =
  { Prog.gname = J.get_string "name" j;
    init = asm_guard (fun () -> Asm.bytes_of_hex (J.get_string "init" j)) }

let of_json j =
  (match J.member "format" j with
  | J.Str t when String.equal t format_tag -> ()
  | _ -> fail "not a %s object" format_tag);
  (match J.member "format_version" j with
  | J.Int v when v = format_version -> ()
  | J.Int v -> fail "unsupported %s version %d" format_tag v
  | _ -> fail "missing %s version" format_tag);
  let globals = List.map global_of_json (J.get_list "globals" j) in
  let funcs = List.map func_of_json (J.get_list "funcs" j) in
  Prog.create ~globals funcs
