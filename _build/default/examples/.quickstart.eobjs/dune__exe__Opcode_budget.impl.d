examples/opcode_budget.ml: Array Format Hashtbl List Ogc_core Ogc_cpu Ogc_gating Ogc_harness Ogc_isa Ogc_workloads Printf String Sys
