lib/ir/loops.ml: Cfg Dom Hashtbl Int Label List
