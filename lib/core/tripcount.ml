open Ogc_isa
open Ogc_ir

type affine_loop = {
  header : Label.t;
  iterator : Reg.t;
  init : int64;
  mul : int64;
  add : int64;
  bound : int64;
  cmp : Instr.cmp_op;
  iter_on_left : bool;
  exit_on_false : bool;
  trip_count : int;
  iterator_range : Interval.t;
}

let iteration_cap = 1 lsl 20

let trip_count ?(iter_on_left = true) ~init ~mul ~add ~cmp ~bound () =
  let holds x =
    if iter_on_left then Int64.equal (Instr.eval_cmp cmp Width.W64 x bound) 1L
    else Int64.equal (Instr.eval_cmp cmp Width.W64 bound x) 1L
  in
  let rec go x n lo hi =
    if not (holds x) then Some (n, Interval.v lo hi)
    else if n >= iteration_cap then None
    else
      let x' =
        Instr.eval_alu Instr.Add Width.W64
          (Instr.eval_alu Instr.Mul Width.W64 mul x)
          add
      in
      go x' (n + 1) (min lo x) (max hi x)
  in
  if holds init then go init 0 init init
  else Some (0, Interval.v init init)

(* The last definition of [r] among the first [limit] instructions of a
   block, searched backwards, with its index.  After register
   allocation distinct values share registers, so pattern lookups must
   stay strictly below the instruction that consumed the value. *)
let last_def_below (b : Prog.block) r ~limit =
  let rec go i =
    if i < 0 then None
    else if List.exists (Reg.equal r) (Instr.defs b.body.(i).Prog.op) then
      Some (i, b.body.(i).Prog.op)
    else go (i - 1)
  in
  go (min limit (Array.length b.body) - 1)

(* Resolve the common "through a move" shape: [v] was produced either
   directly by [pattern] or by [or t, #0 -> v] with [t] produced by
   [pattern] earlier in the same block. *)
let rec def_through_moves ?(limit = max_int) (b : Prog.block) r depth =
  if depth > 4 then None
  else
    match last_def_below b r ~limit with
    | Some (i, Instr.Alu { op = Instr.Or; src1; src2 = Instr.Imm 0L; _ }) ->
      def_through_moves ~limit:i b src1 (depth + 1)
    | Some (_, d) -> Some d
    | None -> None

let analyze (f : Prog.func) =
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  let loops = Loops.compute cfg dom in
  List.filter_map
    (fun (lo : Loops.loop) ->
      let header_block = Prog.block f lo.Loops.header in
      match header_block.Prog.term with
      | Prog.Branch { cond = Instr.Ne; src; if_true; if_false }
        when Label.Set.mem if_true lo.Loops.body
             && not (Label.Set.mem if_false lo.Loops.body) -> (
        (* The canonical `for` shape: continue into the body while the
           header compare holds. *)
        let header_cmp =
          match last_def_below header_block src ~limit:max_int with
          | Some (_, Instr.Cmp { op = cmp; src1 = iterator; src2 = Instr.Imm bound; _ })
            -> Some (cmp, iterator, bound, true)
          | Some (ci, Instr.Cmp { op = cmp; src1 = lhs; src2 = Instr.Reg iterator; _ })
            -> (
            (* x > bound compiles as bound < x: the bound constant arrives
               in a register through a Li (possibly sharing the compare's
               destination register post-allocation, hence the limit). *)
            match def_through_moves ~limit:ci header_block lhs 0 with
            | Some (Instr.Li { imm = bound; _ }) ->
              Some (cmp, iterator, bound, false)
            | _ -> None)
          | _ -> None
        in
        match header_cmp with
        | Some (cmp, iterator, bound, iter_on_left) -> (
          (* Exactly one update of the iterator inside the loop, affine. *)
          let body_blocks =
            Label.Set.elements lo.Loops.body
            |> List.map (fun l -> Prog.block f l)
          in
          let defs_of_iter =
            List.concat_map
              (fun (b : Prog.block) ->
                Array.to_list b.Prog.body
                |> List.filter (fun (ins : Prog.ins) ->
                       List.exists (Reg.equal iterator)
                         (Instr.defs ins.Prog.op)))
              body_blocks
          in
          let has_call =
            List.exists
              (fun (b : Prog.block) ->
                Array.exists
                  (fun (ins : Prog.ins) -> Instr.is_call ins.Prog.op)
                  b.Prog.body)
              body_blocks
          in
          let clobbered_by_call =
            has_call && List.exists (Reg.equal iterator) Reg.caller_saved
          in
          match defs_of_iter with
          | [ upd ] when not clobbered_by_call -> (
            let update_block =
              List.find
                (fun (b : Prog.block) ->
                  Array.exists (fun (i : Prog.ins) -> i.Prog.iid = upd.Prog.iid)
                    b.Prog.body)
                body_blocks
            in
            let affine =
              match def_through_moves update_block iterator 0 with
              | Some (Instr.Alu { op = Instr.Add; src1; src2 = Instr.Imm b; _ })
                when Reg.equal src1 iterator -> Some (1L, b)
              | Some (Instr.Alu { op = Instr.Mul; src1; src2 = Instr.Imm a; _ })
                when Reg.equal src1 iterator -> Some (a, 0L)
              | Some (Instr.Alu { op = Instr.Sub; src1; src2 = Instr.Imm b; _ })
                when Reg.equal src1 iterator -> Some (1L, Int64.neg b)
              | _ -> None
            in
            (* Constant initial value from the predecessors outside the
               loop. *)
            let init =
              let outside =
                List.filter
                  (fun p -> not (Label.Set.mem p lo.Loops.body))
                  (Cfg.preds cfg lo.Loops.header)
              in
              match outside with
              | [ p ] -> (
                match def_through_moves (Prog.block f p) iterator 0 with
                | Some (Instr.Li { imm; _ }) -> Some imm
                | _ -> None)
              | _ -> None
            in
            match (affine, init) with
            | Some (mul, add), Some init -> (
              match trip_count ~iter_on_left ~init ~mul ~add ~cmp ~bound () with
              | Some (n, range) ->
                Some
                  {
                    header = lo.Loops.header;
                    iterator;
                    init;
                    mul;
                    add;
                    bound;
                    cmp;
                    iter_on_left;
                    exit_on_false = true;
                    trip_count = n;
                    iterator_range = range;
                  }
              | None -> None)
            | _ -> None)
          | _ -> None)
        | None -> None)
      | _ -> None)
    (Loops.loops loops)
