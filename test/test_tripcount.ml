(* Dedicated unit tests for the §2.3 affine trip-count analysis: the
   symbolic recurrence evaluator on up- and down-counting x = ax + b
   loops (both compare spellings, signed and unsigned), and the
   syntactic loop recognizer on compiled MiniC — including the fallback
   to "no claim" (⊤ for VRP's purposes) on non-affine loops. *)

open Ogc_isa
module Minic = Ogc_minic.Minic
module Prog = Ogc_ir.Prog
module Interp = Ogc_ir.Interp
module Interval = Ogc_core.Interval
module Tripcount = Ogc_core.Tripcount

let tc ?iter_on_left ~init ~mul ~add ~cmp ~bound () =
  Tripcount.trip_count ?iter_on_left ~init ~mul ~add ~cmp ~bound ()

let check_tc what expected_count expected_range = function
  | Some (n, rng) ->
    Alcotest.(check int) (what ^ ": count") expected_count n;
    Alcotest.(check string) (what ^ ": range") expected_range
      (Interval.to_string rng)
  | None -> Alcotest.failf "%s: diverged" what

(* --- the symbolic evaluator ----------------------------------------------- *)

let test_up_counting () =
  (* The paper's running example: i = 0; i < 100; i++. *)
  check_tc "i<100" 100 "<0,99>"
    (tc ~init:0L ~mul:1L ~add:1L ~cmp:Instr.Clt ~bound:100L ());
  (* Inclusive bound buys one more iteration and one more value. *)
  check_tc "i<=100" 101 "<0,100>"
    (tc ~init:0L ~mul:1L ~add:1L ~cmp:Instr.Cle ~bound:100L ());
  (* Strided: 3, 10, ..., 94. *)
  check_tc "i<100 step 7" 14 "<3,94>"
    (tc ~init:3L ~mul:1L ~add:7L ~cmp:Instr.Clt ~bound:100L ())

let test_down_counting () =
  (* i = 50; i > 8; i -= 3 — the code generator spells i > 8 as 8 < i,
     so the iterator sits on the right of the compare. *)
  check_tc "50 down to >8 step 3" 14 "<11,50>"
    (tc ~iter_on_left:false ~init:50L ~mul:1L ~add:(-3L) ~cmp:Instr.Clt
       ~bound:8L ());
  check_tc "10 down to >=0" 11 "<0,10>"
    (tc ~iter_on_left:false ~init:10L ~mul:1L ~add:(-1L) ~cmp:Instr.Cle
       ~bound:0L ())

let test_multiplicative () =
  (* x = 2x: 1, 2, 4, ..., 512 — ten doublings below 1000. *)
  check_tc "x*=2" 10 "<1,512>"
    (tc ~init:1L ~mul:2L ~add:0L ~cmp:Instr.Clt ~bound:1000L ());
  (* x = 3x + 1: 1, 4, 13, 40, 121. *)
  check_tc "x=3x+1" 5 "<1,121>"
    (tc ~init:1L ~mul:3L ~add:1L ~cmp:Instr.Clt ~bound:200L ())

let test_unsigned_compare () =
  check_tc "unsigned below" 7 "<0,6>"
    (tc ~init:0L ~mul:1L ~add:1L ~cmp:Instr.Cult ~bound:7L ());
  (* A negative value is huge unsigned, so the loop exits immediately:
     zero body executions once the continuation test first fails. *)
  match tc ~init:(-1L) ~mul:1L ~add:1L ~cmp:Instr.Cult ~bound:7L () with
  | Some (0, _) -> ()
  | Some (n, _) -> Alcotest.failf "expected 0 iterations, got %d" n
  | None -> Alcotest.fail "diverged"

let test_divergent_capped () =
  (* x = x never reaches the bound; the evaluator must give up (None)
     rather than loop, and the caller then falls back to widening (⊤). *)
  (match tc ~init:0L ~mul:1L ~add:0L ~cmp:Instr.Clt ~bound:10L () with
  | None -> ()
  | Some _ -> Alcotest.fail "x = x should hit the cap");
  (* Equality exit that is stepped over: 0, 2, 4, ... never equals 9. *)
  match tc ~init:0L ~mul:1L ~add:2L ~cmp:Instr.Ceq ~bound:9L () with
  | None -> ()
  | Some (n, _) ->
    (* An Ceq continuation test fails immediately (0 <> 9): also fine. *)
    Alcotest.(check int) "eq-continue fails at once" 0 n

(* --- the syntactic recognizer on compiled programs ------------------------ *)

let one_loop what prog =
  let f = Prog.find_func prog "main" in
  match Tripcount.analyze f with
  | [ lo ] -> lo
  | l -> Alcotest.failf "%s: expected one affine loop, found %d" what
           (List.length l)

let test_recognize_up () =
  let prog = Minic.compile {|
    int a[64];
    int main() {
      for (int i = 0; i < 64; i++) a[i] = 2 * i;
      emit(a[63]);
      return 0;
    }
  |} in
  let lo = one_loop "up-counting" prog in
  Alcotest.(check int) "trips" 64 lo.Tripcount.trip_count;
  Alcotest.(check int64) "init" 0L lo.Tripcount.init;
  Alcotest.(check int64) "mul" 1L lo.Tripcount.mul;
  Alcotest.(check int64) "add" 1L lo.Tripcount.add;
  Alcotest.(check string) "range" "<0,63>"
    (Interval.to_string lo.Tripcount.iterator_range)

let test_recognize_down () =
  let prog = Minic.compile {|
    int main() {
      long s = 0;
      for (int i = 200; i >= 5; i -= 5) s += i;
      emit(s);
      return 0;
    }
  |} in
  let lo = one_loop "down-counting" prog in
  Alcotest.(check int) "trips" 40 lo.Tripcount.trip_count;
  Alcotest.(check string) "range" "<5,200>"
    (Interval.to_string lo.Tripcount.iterator_range)

let test_nonaffine_rejected () =
  (* x = x*x is not x = ax + b: §2.3 makes no claim, so the recognizer
     must return nothing for this loop (the top-range fallback). *)
  let prog = Minic.compile {|
    int main() {
      int x = 2;
      while (x < 10000) x = x * x;
      emit(x);
      return 0;
    }
  |} in
  let f = Prog.find_func prog "main" in
  Alcotest.(check int) "non-affine update rejected" 0
    (List.length (Tripcount.analyze f))

let test_data_dependent_rejected () =
  (* The exit compares against a loaded value, not a constant. *)
  let prog = Minic.compile {|
    int lim[1];
    int main() {
      lim[0] = 17;
      int i = 0;
      while (i < lim[0]) i = i + 1;
      emit(i);
      return 0;
    }
  |} in
  let f = Prog.find_func prog "main" in
  Alcotest.(check int) "data-dependent bound rejected" 0
    (List.length (Tripcount.analyze f))

let test_recognizer_matches_execution () =
  (* The claimed trip count must equal the number of times the body
     actually runs; count body executions by emitting per iteration. *)
  let prog = Minic.compile {|
    int main() {
      for (int i = 3; i < 50; i += 4) emit(i);
      return 0;
    }
  |} in
  let lo = one_loop "emit loop" prog in
  let out = Interp.run prog in
  Alcotest.(check int) "trip count = executed iterations"
    (List.length out.Interp.emitted) lo.Tripcount.trip_count;
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "emitted %Ld inside claimed range" v)
        true
        (Interval.contains lo.Tripcount.iterator_range v))
    out.Interp.emitted

let () =
  Alcotest.run "tripcount"
    [
      ( "symbolic",
        [
          Alcotest.test_case "up-counting" `Quick test_up_counting;
          Alcotest.test_case "down-counting" `Quick test_down_counting;
          Alcotest.test_case "multiplicative" `Quick test_multiplicative;
          Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
          Alcotest.test_case "divergence capped" `Quick test_divergent_capped;
        ] );
      ( "recognizer",
        [
          Alcotest.test_case "up-counting for loop" `Quick test_recognize_up;
          Alcotest.test_case "down-counting for loop" `Quick
            test_recognize_down;
          Alcotest.test_case "non-affine rejected" `Quick
            test_nonaffine_rejected;
          Alcotest.test_case "data-dependent rejected" `Quick
            test_data_dependent_rejected;
          Alcotest.test_case "matches execution" `Quick
            test_recognizer_matches_execution;
        ] );
    ]
